#include "trace/collector.hpp"

#include <netdb.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>
#include <ctime>

#include "wire/ntp_packet.hpp"
#include "wire/ntp_timestamp.hpp"

namespace tscclock::trace {

namespace {

/// Monotonic nanoseconds: the collector's counter (one count = 1 ns).
TscCount monotonic_ns() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<TscCount>(ts.tv_sec) * 1000000000ull +
         static_cast<TscCount>(ts.tv_nsec);
}

/// Wall clock as an NTP-era timestamp — used only for the request's
/// transmit field so the origin echo can be verified; never enters the
/// exchange data.
wire::NtpTimestamp realtime_ntp_now() {
  timespec ts{};
  clock_gettime(CLOCK_REALTIME, &ts);
  wire::NtpTimestamp out;
  out.seconds = static_cast<std::uint32_t>(
      static_cast<std::uint64_t>(ts.tv_sec) + wire::kNtpToUnixOffset);
  out.fraction = static_cast<std::uint32_t>(
      (static_cast<std::uint64_t>(ts.tv_nsec) << 32) / 1000000000ull);
  return out;
}

void sleep_seconds(Seconds duration) {
  if (!(duration > 0)) return;
  timespec ts{};
  ts.tv_sec = static_cast<time_t>(duration);
  ts.tv_nsec = static_cast<long>((duration - static_cast<double>(ts.tv_sec)) *
                                 1e9);
  nanosleep(&ts, nullptr);
}

/// RAII socket.
class UdpSocket {
 public:
  UdpSocket(const std::string& host, std::uint16_t port) {
    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_DGRAM;
    addrinfo* result = nullptr;
    const int rc =
        getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints,
                    &result);
    if (rc != 0) {
      throw CollectorError("cannot resolve " + host + ": " +
                           gai_strerror(rc));
    }
    int saved_errno = 0;
    for (addrinfo* ai = result; ai != nullptr; ai = ai->ai_next) {
      fd_ = socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
      if (fd_ < 0) {
        saved_errno = errno;
        continue;
      }
      // connect() pins the peer: replies from anyone else are dropped by
      // the kernel, the cheapest possible off-path filter.
      if (connect(fd_, ai->ai_addr, ai->ai_addrlen) == 0) break;
      saved_errno = errno;
      ::close(fd_);
      fd_ = -1;
    }
    freeaddrinfo(result);
    if (fd_ < 0) {
      throw CollectorError("cannot open UDP socket to " + host + ":" +
                           std::to_string(port) + ": " +
                           std::strerror(saved_errno));
    }
  }
  ~UdpSocket() {
    if (fd_ >= 0) ::close(fd_);
  }
  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;

  [[nodiscard]] int fd() const { return fd_; }

 private:
  int fd_ = -1;
};

std::uint8_t poll_log2(Seconds interval) {
  const double log = std::log2(std::max(interval, 1.0));
  return static_cast<std::uint8_t>(
      std::min(std::max(std::lround(log), 0l), 17l));
}

}  // namespace

TraceMeta collector_meta(const CollectorOptions& options) {
  TraceMeta meta;
  meta.mode = harness::GroundTruthMode::kRelativeOnly;
  meta.nominal_period = collector_nominal_period();
  meta.poll_period = options.interval;
  meta.client_id = options.client_id;
  meta.label = options.label.empty()
                   ? options.host + ":" + std::to_string(options.port) +
                         " via ntp-collect"
                   : options.label;
  return meta;
}

CollectorReport collect(
    const CollectorOptions& options, TraceWriter& writer,
    const std::function<void(const std::string&)>& progress) {
  if (options.host.empty()) throw CollectorError("no server host given");
  if (options.count == 0) throw CollectorError("poll count must be positive");
  if (!(options.interval > 0)) {
    throw CollectorError("poll interval must be positive");
  }
  if (!(options.timeout > 0)) throw CollectorError("timeout must be positive");

  UdpSocket sock(options.host, options.port);
  CollectorReport report;
  const auto note = [&](const std::string& message) {
    if (progress) progress(message);
  };

  // Server stamps are rebased against the first validated reply's integer
  // second so every Tb/Te is a small double carrying the full wire
  // resolution (wire::from_ntp_timestamp_at_epoch).
  bool have_epoch = false;
  std::uint32_t epoch_era_seconds = 0;

  while (report.attempted < options.count) {
    const TscCount poll_start = monotonic_ns();
    harness::ReplaySample sample;
    sample.index = report.attempted;
    sample.client_id = options.client_id;
    ++report.attempted;

    const wire::NtpTimestamp origin = realtime_ntp_now();
    const auto request =
        wire::encode(wire::make_client_request(origin,
                                               poll_log2(options.interval)));
    const TscCount ta = monotonic_ns();
    if (send(sock.fd(), request.data(), request.size(), 0) !=
        static_cast<ssize_t>(request.size())) {
      throw CollectorError(std::string("send failed: ") +
                           std::strerror(errno));
    }

    // Wait for a validating reply until the timeout; a decodable-but-bad
    // reply is refused (the datagram may be followed by the real answer —
    // keep listening within the same budget).
    bool got = false;
    const TscCount deadline =
        ta + static_cast<TscCount>(options.timeout * 1e9);
    while (!got) {
      const TscCount now = monotonic_ns();
      if (now >= deadline) break;
      pollfd pfd{sock.fd(), POLLIN, 0};
      const int timeout_ms =
          static_cast<int>((deadline - now) / 1000000ull) + 1;
      const int ready = ::poll(&pfd, 1, timeout_ms);
      if (ready < 0) {
        if (errno == EINTR) continue;
        throw CollectorError(std::string("poll failed: ") +
                             std::strerror(errno));
      }
      if (ready == 0) break;
      std::uint8_t buffer[512];
      const ssize_t n = recv(sock.fd(), buffer, sizeof(buffer), 0);
      const TscCount tf = monotonic_ns();
      if (n < 0) {
        if (errno == EINTR || errno == EAGAIN) continue;
        throw CollectorError(std::string("recv failed: ") +
                             std::strerror(errno));
      }
      wire::NtpPacket reply;
      try {
        reply = wire::decode(
            std::span<const std::uint8_t>(buffer, static_cast<size_t>(n)));
        wire::validate_server_reply(reply, origin);
      } catch (const wire::PacketError& e) {
        const std::string what = e.what();
        if (what.find("kiss-o'-death") != std::string::npos) {
          // RFC 5905 §7.4: a KoD is an order to stop, not a bad sample.
          throw CollectorError("server sent " + what + " — aborting");
        }
        ++report.refused;
        note("poll " + std::to_string(sample.index) + ": refused reply (" +
             what + ")");
        continue;
      }
      if (!have_epoch) {
        epoch_era_seconds = reply.receive_time.seconds;
        have_epoch = true;
      }
      sample.raw.ta = ta;
      sample.raw.tb = wire::from_ntp_timestamp_at_epoch(reply.receive_time,
                                                        epoch_era_seconds);
      sample.raw.te = wire::from_ntp_timestamp_at_epoch(reply.transmit_time,
                                                        epoch_era_seconds);
      sample.raw.tf = tf;
      sample.tf_counts_corrected = tf;
      got = true;
    }

    if (got) {
      ++report.received;
      note("poll " + std::to_string(sample.index) + ": rtt " +
           std::to_string(static_cast<double>(sample.raw.tf - sample.raw.ta) /
                          1e6) +
           " ms");
    } else {
      sample.lost = true;
      ++report.lost;
      note("poll " + std::to_string(sample.index) + ": timeout (lost)");
    }
    writer.write(sample);

    if (report.attempted < options.count) {
      const Seconds elapsed =
          static_cast<double>(monotonic_ns() - poll_start) / 1e9;
      sleep_seconds(options.interval - elapsed);
    }
  }
  return report;
}

}  // namespace tscclock::trace
