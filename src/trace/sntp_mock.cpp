#include "trace/sntp_mock.hpp"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <ctime>

#include "wire/ntp_packet.hpp"
#include "wire/ntp_timestamp.hpp"

namespace tscclock::trace {

namespace {

wire::NtpTimestamp wall_clock_ntp_now() {
  timespec ts{};
  clock_gettime(CLOCK_REALTIME, &ts);
  wire::NtpTimestamp out;
  out.seconds = static_cast<std::uint32_t>(
      static_cast<std::uint64_t>(ts.tv_sec) + wire::kNtpToUnixOffset);
  out.fraction = static_cast<std::uint32_t>(
      (static_cast<std::uint64_t>(ts.tv_nsec) << 32) / 1000000000ull);
  return out;
}

}  // namespace

MockSntpServer::MockSntpServer(Behavior behavior) : behavior_(behavior) {
  fd_ = socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0) return;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral: parallel tests must not collide
  if (bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd_);
    fd_ = -1;
    return;
  }
  socklen_t len = sizeof(addr);
  if (getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd_);
    fd_ = -1;
    return;
  }
  port_ = ntohs(addr.sin_port);
  // A receive timeout turns the blocking loop into a stop-flag poll.
  timeval tv{};
  tv.tv_usec = 50000;  // 50 ms
  setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  thread_ = std::thread([this] { serve(); });
}

MockSntpServer::~MockSntpServer() {
  stop_.store(true);
  if (thread_.joinable()) thread_.join();
  if (fd_ >= 0) ::close(fd_);
}

void MockSntpServer::serve() {
  std::uint8_t buffer[512];
  while (!stop_.load()) {
    sockaddr_in peer{};
    socklen_t peer_len = sizeof(peer);
    const ssize_t n =
        recvfrom(fd_, buffer, sizeof(buffer), 0,
                 reinterpret_cast<sockaddr*>(&peer), &peer_len);
    if (n < 0) continue;  // timeout or EINTR: re-check the stop flag
    requests_seen_.fetch_add(1);
    if (behavior_ == Behavior::kSilent) continue;

    wire::NtpPacket request;
    try {
      request = wire::decode(
          std::span<const std::uint8_t>(buffer, static_cast<size_t>(n)));
    } catch (const wire::PacketError&) {
      continue;  // a real server drops garbage too
    }

    const wire::NtpTimestamp receive = wall_clock_ntp_now();
    wire::NtpPacket reply = wire::make_server_reply(
        request, receive, wall_clock_ntp_now(), /*stratum=*/2,
        wire::reference_id_from_string("MOCK"));
    switch (behavior_) {
      case Behavior::kKissOfDeath:
        reply.stratum = 0;
        reply.reference_id = wire::reference_id_from_string("RATE");
        break;
      case Behavior::kUnsynchronized:
        reply.leap = wire::LeapIndicator::kUnsynchronized;
        break;
      case Behavior::kZeroTimestamps:
        reply.receive_time = {};
        reply.transmit_time = {};
        break;
      case Behavior::kWrongOrigin:
        reply.origin_time.fraction ^= 1;  // one LSB off the echo
        break;
      default:
        break;
    }
    const auto encoded = wire::encode(reply);
    const std::size_t send_len =
        behavior_ == Behavior::kTruncated ? 20 : encoded.size();
    sendto(fd_, encoded.data(), send_len, 0,
           reinterpret_cast<sockaddr*>(&peer), peer_len);
  }
}

}  // namespace tscclock::trace
