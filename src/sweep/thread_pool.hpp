// Work-stealing thread pool for the scenario sweep engine.
//
// Each worker owns a deque: it pops work from the front of its own queue and,
// when empty, steals from the back of a sibling's queue. Tasks are submitted
// round-robin across workers, so a sweep over scenarios of wildly different
// cost (a week of ServerExt vs. an hour of ServerLoc) still keeps every core
// busy until the queue drains. Determinism is the caller's job: tasks must
// write to disjoint result slots, so the schedule (which worker runs what,
// in what order) cannot influence the reduced output.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace tscclock::sweep {

class ThreadPool {
 public:
  /// `threads` = 0 selects std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// The worker count a given request resolves to (the constructor's
  /// default policy, exposed so callers can cap it, e.g. by task count).
  [[nodiscard]] static std::size_t resolve_thread_count(std::size_t requested);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue one task. Safe to call from any thread, including from inside
  /// a running task (nested submissions go to the submitting worker's own
  /// queue, front position, for cache locality).
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished executing. If any task
  /// threw, the first captured exception is rethrown here (the remaining
  /// tasks still ran to completion); a worker never dies on a throwing task.
  void wait_idle();

  [[nodiscard]] std::size_t thread_count() const { return workers_.size(); }

 private:
  struct Worker {
    std::deque<std::function<void()>> queue;
    std::mutex mutex;
  };

  void worker_loop(std::size_t self);
  bool try_pop_own(std::size_t self, std::function<void()>& task);
  bool try_steal(std::size_t self, std::function<void()>& task);

  std::vector<std::unique_ptr<Worker>> queues_;
  std::vector<std::thread> workers_;

  std::mutex state_mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_idle_;
  std::size_t pending_ = 0;  ///< submitted but not yet completed
  std::size_t next_queue_ = 0;
  bool shutdown_ = false;
  std::exception_ptr first_error_;  ///< first task exception, for wait_idle
};

/// Run `fn(i)` for every i in [0, n) on `pool`, blocking until all complete.
/// Each index is an independent task; `fn` must confine writes to slot i.
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn);

}  // namespace tscclock::sweep
