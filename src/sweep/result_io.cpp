#include "sweep/result_io.hpp"

#include <algorithm>
#include <filesystem>
#include <map>
#include <sstream>

#include "common/contracts.hpp"
#include "common/csv.hpp"
#include "common/serialize.hpp"
#include "common/table.hpp"

namespace tscclock::sweep {

namespace {

constexpr const char* kDumpMagic = "tscclock-sweep-results";
constexpr const char* kCheckpointMagic = "tscclock-sweep-checkpoint";

// -- Token helpers ----------------------------------------------------------

std::string server_token(sim::ServerKind kind) { return sim::to_string(kind); }

sim::ServerKind parse_server_token(const std::string& token) {
  if (token == "ServerLoc") return sim::ServerKind::kLoc;
  if (token == "ServerInt") return sim::ServerKind::kInt;
  if (token == "ServerExt") return sim::ServerKind::kExt;
  throw ResultIoError("unknown server token '" + token + "'");
}

sim::Environment parse_environment_token(const std::string& token) {
  if (token == "laboratory") return sim::Environment::kLaboratory;
  if (token == "machine-room") return sim::Environment::kMachineRoom;
  throw ResultIoError("unknown environment token '" + token + "'");
}

/// Reconstruct an EstimatorSpec from its canonical label without consulting
/// the registry: the merge tool must render results for any family a shard
/// binary knew, including out-of-tree ones this binary never linked. The
/// canonical form — family, then "(k=v,...)" with no spaces and no nested
/// punctuation in values — splits unambiguously.
harness::EstimatorSpec spec_from_label(const std::string& label) {
  harness::EstimatorSpec spec;
  const std::size_t open = label.find('(');
  if (open == std::string::npos) {
    spec.family = label;
    return spec;
  }
  if (label.back() != ')') {
    throw ResultIoError("malformed estimator label '" + label + "'");
  }
  spec.family = label.substr(0, open);
  const std::string inner = label.substr(open + 1, label.size() - open - 2);
  for (const auto& item : split_fields(inner, ',')) {
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw ResultIoError("malformed estimator label '" + label + "'");
    }
    spec.overrides.emplace_back(item.substr(0, eq), item.substr(eq + 1));
  }
  if (spec.family.empty() || spec.overrides.empty()) {
    throw ResultIoError("malformed estimator label '" + label + "'");
  }
  return spec;
}

void append_summary(std::ostringstream& out, const SeriesSummary& s) {
  out << '\t' << s.count << '\t' << format_double_exact(s.min) << '\t'
      << format_double_exact(s.max) << '\t' << format_double_exact(s.mean)
      << '\t' << format_double_exact(s.stddev) << '\t'
      << format_double_exact(s.percentiles.p01) << '\t'
      << format_double_exact(s.percentiles.p25) << '\t'
      << format_double_exact(s.percentiles.p50) << '\t'
      << format_double_exact(s.percentiles.p75) << '\t'
      << format_double_exact(s.percentiles.p99);
}

/// Sequential field cursor over a split record line; every read is
/// validated so a torn/reordered record surfaces as ResultIoError, never as
/// silently wrong numbers.
class FieldReader {
 public:
  explicit FieldReader(std::vector<std::string> fields)
      : fields_(std::move(fields)) {}

  const std::string& next() {
    if (index_ >= fields_.size()) {
      throw ResultIoError("record truncated: expected more fields");
    }
    return fields_[index_++];
  }
  std::uint64_t next_u64() { return parse_u64_exact(next()); }
  std::size_t next_size() { return static_cast<std::size_t>(next_u64()); }
  double next_double() { return parse_double_exact(next()); }
  bool next_bool() {
    const std::string& token = next();
    if (token == "0") return false;
    if (token == "1") return true;
    throw ResultIoError("malformed bool field '" + token + "'");
  }
  std::string next_text() { return unescape_field(next()); }
  [[nodiscard]] bool exhausted() const { return index_ == fields_.size(); }
  [[nodiscard]] std::size_t size() const { return fields_.size(); }

 private:
  std::vector<std::string> fields_;
  std::size_t index_ = 0;
};

SeriesSummary read_summary(FieldReader& reader) {
  SeriesSummary s;
  s.count = reader.next_size();
  s.min = reader.next_double();
  s.max = reader.next_double();
  s.mean = reader.next_double();
  s.stddev = reader.next_double();
  s.percentiles.p01 = reader.next_double();
  s.percentiles.p25 = reader.next_double();
  s.percentiles.p50 = reader.next_double();
  s.percentiles.p75 = reader.next_double();
  s.percentiles.p99 = reader.next_double();
  return s;
}

/// serialize_result field count; parse_result enforces it exactly so a
/// record from a different (future) layout can never half-parse.
constexpr std::size_t kCellFields = 64;

/// Line-oriented reader tracking byte offsets (the checkpoint loader needs
/// the exact end-of-prefix offset to truncate a torn tail). A final line
/// without a terminating newline is reported as torn, never returned as
/// content — that is precisely the kill-mid-write signature.
class LineReader {
 public:
  explicit LineReader(const std::string& content) : content_(content) {}

  /// Next complete ('\n'-terminated) line, without the newline.
  /// Returns false at end of complete content; a trailing unterminated
  /// fragment sets torn().
  bool next_line(std::string& line) {
    if (offset_ >= content_.size()) return false;
    const std::size_t newline = content_.find('\n', offset_);
    if (newline == std::string::npos) {
      torn_ = true;
      return false;
    }
    line.assign(content_, offset_, newline - offset_);
    offset_ = newline + 1;
    return true;
  }

  [[nodiscard]] std::uint64_t offset() const { return offset_; }
  [[nodiscard]] bool torn() const { return torn_; }

 private:
  const std::string& content_;
  std::size_t offset_ = 0;
  bool torn_ = false;
};

std::string read_file(const std::string& path, const char* what) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw ResultIoError(std::string(what) + ": cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    throw ResultIoError(std::string(what) + ": read error on " + path);
  }
  return buffer.str();
}

/// "key value" header line helper: enforces the key and returns the value.
std::string header_value(const std::string& line, const std::string& key,
                         const std::string& context) {
  if (line.size() <= key.size() || line.compare(0, key.size(), key) != 0 ||
      line[key.size()] != ' ') {
    throw ResultIoError(context + ": expected '" + key + " ...', got '" +
                        line + "'");
  }
  return line.substr(key.size() + 1);
}

/// Parse "<magic> <version>" and enforce both; a version mismatch names the
/// two versions (the CLI "version-skewed dump" message).
void check_magic(const std::string& line, const char* magic,
                 const std::string& context) {
  const std::string expected_prefix = std::string(magic) + " ";
  if (line.compare(0, expected_prefix.size(), expected_prefix) != 0) {
    throw ResultIoError(context + ": not a " + magic + " file (first line '" +
                        line + "')");
  }
  const std::string version = line.substr(expected_prefix.size());
  if (version != std::to_string(kResultFormatVersion)) {
    throw ResultIoError(
        context + ": format version " + version +
        " is not supported by this build (expected version " +
        std::to_string(kResultFormatVersion) + ")");
  }
}

std::string format_hash(std::uint64_t hash) {
  return strfmt("0x%016llx", static_cast<unsigned long long>(hash));
}

std::uint64_t parse_hash(const std::string& text, const std::string& context) {
  if (text.size() != 18 || text.compare(0, 2, "0x") != 0) {
    throw ResultIoError(context + ": malformed hash '" + text + "'");
  }
  std::uint64_t value = 0;
  for (std::size_t i = 2; i < text.size(); ++i) {
    const char c = text[i];
    value <<= 4;
    if (c >= '0' && c <= '9') {
      value |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      value |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      throw ResultIoError(context + ": malformed hash '" + text + "'");
    }
  }
  return value;
}

ShardSpec parse_shard_token(const std::string& text,
                            const std::string& context) {
  try {
    return parse_shard(text);
  } catch (const SweepUsageError&) {
    throw ResultIoError(context + ": malformed shard '" + text + "'");
  }
}

}  // namespace

std::uint64_t sweep_run_hash(const GridSpec& grid, Seconds discard_warmup,
                             bool streaming_reduction) {
  std::string descriptor = grid_descriptor(grid);
  descriptor += "discard_warmup " + format_double_exact(discard_warmup) + "\n";
  descriptor += streaming_reduction ? "reduction streaming\n"
                                    : "reduction exact\n";
  return fnv1a64(descriptor);
}

// -- Cell serialization ------------------------------------------------------

std::string serialize_result(const ScenarioResult& r) {
  std::ostringstream out;
  out << r.scenario_index << '\t' << escape_field(r.name) << '\t' << r.seed
      << '\t' << server_token(r.server) << '\t' << sim::to_string(r.environment)
      << '\t' << escape_field(r.estimator.label()) << '\t'
      << (r.failed ? 1 : 0) << '\t' << escape_field(r.error) << '\t' << r.polls
      << '\t' << r.skipped << '\t' << r.exchanges << '\t' << r.lost << '\t'
      << r.evaluated;
  append_summary(out, r.clock_error);
  append_summary(out, r.offset_error);
  out << '\t' << format_double_exact(r.adev_short_tau) << '\t'
      << format_double_exact(r.adev_short) << '\t'
      << format_double_exact(r.adev_long_tau) << '\t'
      << format_double_exact(r.adev_long) << '\t' << r.steps;
  const core::ClockStatus& s = r.final_status;
  out << '\t' << s.packets_processed << '\t' << s.rate_accepted << '\t'
      << s.offset_sanity_triggers << '\t' << s.offset_fallbacks << '\t'
      << s.gap_blends << '\t' << s.local_rate_sanity_blocks << '\t'
      << s.rate_sanity_blocks << '\t' << s.rate_sanity_releases << '\t'
      << s.offset_sanity_releases << '\t' << s.upshifts << '\t'
      << s.downshifts << '\t' << s.top_window_updates << '\t'
      << s.server_changes << '\t' << (s.warmed_up ? 1 : 0) << '\t'
      << format_double_exact(s.period) << '\t'
      << format_double_exact(s.period_quality) << '\t'
      << (s.local_rate_usable ? 1 : 0) << '\t'
      << format_double_exact(s.local_rate_residual) << '\t'
      << format_double_exact(s.offset) << '\t'
      << format_double_exact(s.min_rtt);
  // v2: the fleet fields ride at the end so a v1 record is exactly a v2
  // record minus this suffix (the version gate still refuses the mix; the
  // ordering just keeps diffs of mixed-era dumps readable).
  out << '\t' << r.clients << '\t' << format_double_exact(r.fleet_dispersion)
      << '\t' << format_double_exact(r.fleet_worst_p99) << '\t'
      << format_double_exact(r.fleet_pairwise_spread);
  // v3: the imported-trace flags ride behind the fleet suffix.
  out << '\t' << (r.from_trace ? 1 : 0) << '\t' << (r.relative_only ? 1 : 0);
  return out.str();
}

ScenarioResult parse_result(std::string_view line) {
  FieldReader reader(split_fields(line));
  if (reader.size() != kCellFields) {
    throw ResultIoError(strfmt("cell record has %zu fields, expected %zu",
                               reader.size(), kCellFields));
  }
  try {
    ScenarioResult r;
    r.scenario_index = reader.next_size();
    r.name = reader.next_text();
    r.seed = reader.next_u64();
    r.server = parse_server_token(reader.next());
    r.environment = parse_environment_token(reader.next());
    r.estimator = spec_from_label(reader.next_text());
    r.failed = reader.next_bool();
    r.error = reader.next_text();
    r.polls = reader.next_size();
    r.skipped = reader.next_size();
    r.exchanges = reader.next_size();
    r.lost = reader.next_size();
    r.evaluated = reader.next_size();
    r.clock_error = read_summary(reader);
    r.offset_error = read_summary(reader);
    r.adev_short_tau = reader.next_double();
    r.adev_short = reader.next_double();
    r.adev_long_tau = reader.next_double();
    r.adev_long = reader.next_double();
    r.steps = reader.next_u64();
    core::ClockStatus& s = r.final_status;
    s.packets_processed = reader.next_u64();
    s.rate_accepted = reader.next_u64();
    s.offset_sanity_triggers = reader.next_u64();
    s.offset_fallbacks = reader.next_u64();
    s.gap_blends = reader.next_u64();
    s.local_rate_sanity_blocks = reader.next_u64();
    s.rate_sanity_blocks = reader.next_u64();
    s.rate_sanity_releases = reader.next_u64();
    s.offset_sanity_releases = reader.next_u64();
    s.upshifts = reader.next_u64();
    s.downshifts = reader.next_u64();
    s.top_window_updates = reader.next_u64();
    s.server_changes = reader.next_u64();
    s.warmed_up = reader.next_bool();
    s.period = reader.next_double();
    s.period_quality = reader.next_double();
    s.local_rate_usable = reader.next_bool();
    s.local_rate_residual = reader.next_double();
    s.offset = reader.next_double();
    s.min_rtt = reader.next_double();
    r.clients = reader.next_size();
    r.fleet_dispersion = reader.next_double();
    r.fleet_worst_p99 = reader.next_double();
    r.fleet_pairwise_spread = reader.next_double();
    r.from_trace = reader.next_bool();
    r.relative_only = reader.next_bool();
    TSC_ENSURES(reader.exhausted());
    return r;
  } catch (const ResultIoError&) {
    throw;
  } catch (const std::exception& e) {
    throw ResultIoError(std::string("malformed cell record: ") + e.what());
  }
}

// -- Shard result dumps ------------------------------------------------------

namespace {

void write_dump_header(std::ostream& out, const ShardDumpHeader& header,
                       std::size_t cell_count) {
  out << kDumpMagic << ' ' << header.version << '\n';
  out << "hash " << format_hash(header.run_hash) << '\n';
  out << "shard " << header.shard.label() << '\n';
  out << "scenarios_total " << header.scenario_total << '\n';
  out << "duration " << format_double_exact(header.duration) << '\n';
  out << "master_seed " << header.master_seed << '\n';
  out << "estimators " << header.estimator_labels.size() << '\n';
  for (const auto& label : header.estimator_labels) {
    out << "estimator " << escape_field(label) << '\n';
  }
  out << "cells " << cell_count << '\n';
}

}  // namespace

ShardDumpWriter::ShardDumpWriter(const std::string& path,
                                 const ShardDumpHeader& header,
                                 std::size_t cell_count)
    : path_(path), cell_count_(cell_count) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("cannot open result dump " + path +
                             " for writing");
  }
  out.exceptions(std::ios::badbit | std::ios::failbit);
  write_dump_header(out, header, cell_count);
  out.close();
}

void ShardDumpWriter::write_cells(std::span<const ScenarioResult> results) {
  TSC_EXPECTS(results.size() == cell_count_);
  std::ofstream out(path_, std::ios::binary | std::ios::app);
  if (!out) {
    throw std::runtime_error("cannot reopen result dump " + path_);
  }
  out.exceptions(std::ios::badbit | std::ios::failbit);
  for (const auto& result : results) {
    out << "cell\t" << serialize_result(result) << '\n';
  }
  // The end marker is the completeness witness: a dump that died mid-write
  // (or a partially copied file) is refused by read_shard_dump.
  out << "end\n";
  out.close();
}

ShardDump read_shard_dump(const std::string& path) {
  const std::string content = read_file(path, "result dump");
  const std::string context = "result dump " + path;
  LineReader lines(content);
  std::string line;
  const auto next_line = [&]() -> const std::string& {
    if (!lines.next_line(line)) {
      throw ResultIoError(context + ": truncated (unexpected end of file)");
    }
    return line;
  };

  ShardDump dump;
  check_magic(next_line(), kDumpMagic, context);
  dump.header.run_hash =
      parse_hash(header_value(next_line(), "hash", context), context);
  dump.header.shard =
      parse_shard_token(header_value(next_line(), "shard", context), context);
  try {
    dump.header.scenario_total =
        parse_u64_exact(header_value(next_line(), "scenarios_total", context));
    dump.header.duration =
        parse_double_exact(header_value(next_line(), "duration", context));
    dump.header.master_seed =
        parse_u64_exact(header_value(next_line(), "master_seed", context));
    const std::size_t estimator_count =
        parse_u64_exact(header_value(next_line(), "estimators", context));
    for (std::size_t i = 0; i < estimator_count; ++i) {
      dump.header.estimator_labels.push_back(
          unescape_field(header_value(next_line(), "estimator", context)));
    }
    const std::size_t cell_count =
        parse_u64_exact(header_value(next_line(), "cells", context));
    dump.results.reserve(cell_count);
    for (std::size_t i = 0; i < cell_count; ++i) {
      const std::string& cell_line = next_line();
      if (cell_line.compare(0, 5, "cell\t") != 0) {
        throw ResultIoError(context + ": expected cell record " +
                            std::to_string(i) + ", got '" + cell_line + "'");
      }
      dump.results.push_back(
          parse_result(std::string_view(cell_line).substr(5)));
    }
  } catch (const ResultIoError&) {
    throw;
  } catch (const std::exception& e) {
    throw ResultIoError(context + ": " + e.what());
  }
  if (next_line() != "end") {
    throw ResultIoError(context + ": missing end marker (dump incomplete)");
  }
  return dump;
}

// -- Merge -------------------------------------------------------------------

MergedSweep merge_shard_dumps(const std::vector<ShardDump>& dumps) {
  if (dumps.empty()) {
    throw ResultIoError("nothing to merge: no shard dumps given");
  }
  const ShardDumpHeader& first = dumps.front().header;
  const std::size_t shard_count = first.shard.count;

  // Header consistency: every dump must describe the same run.
  std::vector<const ShardDump*> by_index(shard_count, nullptr);
  for (const auto& dump : dumps) {
    const ShardDumpHeader& h = dump.header;
    if (h.run_hash != first.run_hash) {
      throw ResultIoError(strfmt(
          "shard %s does not belong to the same sweep: run fingerprint %s "
          "vs %s (different grid, seed, warm-up or reduction options)",
          h.shard.label().c_str(), format_hash(h.run_hash).c_str(),
          format_hash(first.run_hash).c_str()));
    }
    if (h.shard.count != shard_count) {
      throw ResultIoError(strfmt(
          "inconsistent shard counts: got shard %s alongside shard %s",
          h.shard.label().c_str(), first.shard.label().c_str()));
    }
    if (h.scenario_total != first.scenario_total ||
        h.estimator_labels != first.estimator_labels ||
        h.master_seed != first.master_seed ||
        h.duration != first.duration) {
      throw ResultIoError(
          strfmt("shard %s header disagrees with shard %s despite matching "
                 "fingerprints (corrupt dump?)",
                 h.shard.label().c_str(), first.shard.label().c_str()));
    }
    const std::size_t slot = h.shard.index - 1;
    if (by_index[slot] != nullptr) {
      throw ResultIoError("duplicate dump for shard " + h.shard.label());
    }
    by_index[slot] = &dump;
  }
  if (dumps.size() != shard_count) {
    // Fewer dumps than N (with no duplicates) means a gap; name the first.
    for (std::size_t i = 0; i < shard_count; ++i) {
      if (by_index[i] == nullptr) {
        throw ResultIoError(strfmt(
            "missing dump for shard %zu/%zu (got %zu of %zu shards)", i + 1,
            shard_count, dumps.size(), shard_count));
      }
    }
  }

  // Coverage: each shard must hold exactly its round-robin slice, in order.
  const std::size_t lanes = first.estimator_labels.size();
  const std::size_t total = first.scenario_total;
  MergedSweep merged;
  merged.header = first;
  merged.header.shard = ShardSpec{1, 1};
  merged.results.resize(total * lanes);
  std::vector<char> covered(total, 0);
  for (std::size_t s = 0; s < shard_count; ++s) {
    const ShardSpec shard{s + 1, shard_count};
    const std::vector<std::size_t> owned = shard_scenarios(total, shard);
    const ShardDump& dump = *by_index[s];
    if (dump.results.size() != owned.size() * lanes) {
      throw ResultIoError(
          strfmt("shard %s holds %zu cells, expected %zu (%zu scenarios x "
                 "%zu estimators)",
                 shard.label().c_str(), dump.results.size(),
                 owned.size() * lanes, owned.size(), lanes));
    }
    for (std::size_t k = 0; k < owned.size(); ++k) {
      const std::size_t scenario = owned[k];
      if (covered[scenario]) {
        throw ResultIoError(strfmt("scenario %zu covered twice", scenario));
      }
      covered[scenario] = 1;
      for (std::size_t e = 0; e < lanes; ++e) {
        const ScenarioResult& cell = dump.results[k * lanes + e];
        if (cell.scenario_index != scenario) {
          throw ResultIoError(
              strfmt("shard %s cell %zu carries scenario index %zu, "
                     "expected %zu (dump out of order?)",
                     shard.label().c_str(), k * lanes + e,
                     cell.scenario_index, scenario));
        }
        if (cell.estimator.label() != first.estimator_labels[e]) {
          throw ResultIoError(
              strfmt("shard %s scenario %zu lane %zu is '%s', expected '%s'",
                     shard.label().c_str(), scenario, e,
                     cell.estimator.label().c_str(),
                     first.estimator_labels[e].c_str()));
        }
        merged.results[scenario * lanes + e] = cell;
      }
    }
  }
  for (std::size_t i = 0; i < total; ++i) {
    // Unreachable when the arithmetic above is right (every scenario has
    // exactly one round-robin owner), kept as a cheap invariant.
    if (!covered[i]) {
      throw ResultIoError(strfmt("scenario %zu covered by no shard", i));
    }
  }
  return merged;
}

namespace {

/// Sequential reader over one shard's trace CSV: hands out the contiguous
/// row block of each scenario in file order (exactly how the sweep's
/// grid-order drainer wrote them).
class TraceCsvReader {
 public:
  explicit TraceCsvReader(const std::string& path)
      : path_(path), content_(read_file(path, "trace csv")), lines_(content_) {
    if (lines_.torn()) {
      // Defensive; torn() only set after a failed next_line().
    }
    if (!lines_.next_line(header_)) {
      throw ResultIoError("trace csv " + path + ": empty file");
    }
    advance();
  }

  [[nodiscard]] const std::string& header() const { return header_; }

  /// Append (with newlines) every consecutive row whose scenario column
  /// equals `scenario`; zero rows is valid (FAILED or empty cells).
  void take_scenario(const std::string& scenario, std::string& out) {
    while (have_row_ && row_scenario_ == scenario) {
      out += row_;
      out += '\n';
      advance();
    }
  }

  void expect_exhausted() const {
    if (have_row_) {
      throw ResultIoError("trace csv " + path_ +
                          ": unclaimed rows for scenario '" + row_scenario_ +
                          "' (does the trace belong to this dump?)");
    }
  }

 private:
  void advance() {
    have_row_ = lines_.next_line(row_);
    if (lines_.torn()) {
      throw ResultIoError("trace csv " + path_ +
                          ": torn trailing line (incomplete dump)");
    }
    if (!have_row_) return;
    // Only the first column matters here, but it may be RFC-4180-quoted:
    // fleet-axis labels put commas (and parens) into scenario names, so the
    // writer quotes them just like multi-override estimator labels.
    if (!row_.empty() && row_.front() == '"') {
      std::string name;
      std::size_t i = 1;
      for (; i < row_.size(); ++i) {
        if (row_[i] == '"') {
          if (i + 1 < row_.size() && row_[i + 1] == '"') {
            name += '"';
            ++i;
          } else {
            break;
          }
        } else {
          name += row_[i];
        }
      }
      row_scenario_ = std::move(name);
    } else {
      const std::size_t comma = row_.find(',');
      row_scenario_ =
          comma == std::string::npos ? row_ : row_.substr(0, comma);
    }
  }

  std::string path_;
  std::string content_;
  LineReader lines_;
  std::string header_;
  std::string row_;
  std::string row_scenario_;
  bool have_row_ = false;
};

}  // namespace

void merge_trace_csv(const MergedSweep& merged,
                     const std::vector<ShardDump>& dumps,
                     const std::vector<std::string>& trace_paths,
                     const std::string& out_path) {
  TSC_EXPECTS(dumps.size() == trace_paths.size());
  const std::size_t shard_count =
      dumps.empty() ? 0 : dumps.front().header.shard.count;
  if (dumps.size() != shard_count) {
    throw ResultIoError("merge_trace_csv needs every shard's trace");
  }
  std::vector<std::unique_ptr<TraceCsvReader>> readers(shard_count);
  for (std::size_t j = 0; j < dumps.size(); ++j) {
    const std::size_t slot = dumps[j].header.shard.index - 1;
    TSC_EXPECTS(slot < shard_count && readers[slot] == nullptr);
    readers[slot] = std::make_unique<TraceCsvReader>(trace_paths[j]);
  }
  const std::string& header = readers[0]->header();
  for (const auto& reader : readers) {
    if (reader->header() != header) {
      throw ResultIoError("trace csv headers disagree across shards");
    }
  }

  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw ResultIoError("cannot open merged trace csv " + out_path);
  }
  out.exceptions(std::ios::badbit | std::ios::failbit);
  out << header << '\n';

  const std::size_t lanes = merged.header.estimator_labels.size();
  std::string block;
  for (std::size_t scenario = 0; scenario * lanes < merged.results.size();
       ++scenario) {
    const ScenarioResult& cell = merged.results[scenario * lanes];
    const std::size_t owner = scenario % shard_count;
    block.clear();
    readers[owner]->take_scenario(cell.name, block);
    out << block;
  }
  for (const auto& reader : readers) reader->expect_exhausted();
  out.close();
}

// -- Checkpoints -------------------------------------------------------------

namespace {

void write_checkpoint_header(std::ostream& out,
                             const CheckpointHeader& header) {
  out << kCheckpointMagic << ' ' << header.version << '\n';
  out << "hash " << format_hash(header.run_hash) << '\n';
  out << "shard " << header.shard.label() << '\n';
  out << "csv " << (header.with_csv ? 1 : 0) << '\n';
}

}  // namespace

CheckpointLoad load_checkpoint(const std::string& path,
                               const CheckpointHeader& expected,
                               const std::vector<SweepScenario>& scenarios,
                               std::span<const std::string> estimator_labels) {
  const std::string context = "checkpoint " + path;
  std::string content;
  try {
    content = read_file(path, "checkpoint");
  } catch (const ResultIoError& e) {
    throw SweepUsageError(e.what());
  }
  LineReader lines(content);
  std::string line;
  const auto next_header_line = [&]() -> const std::string& {
    if (!lines.next_line(line)) {
      throw SweepUsageError(context +
                            ": truncated before the header completed — "
                            "delete the file to start over");
    }
    return line;
  };

  // Header mismatches are usage errors (exit 2): the user pointed a resume
  // at the wrong file or changed the invocation under it.
  CheckpointLoad load;
  try {
    check_magic(next_header_line(), kCheckpointMagic, context);
    const std::uint64_t hash = parse_hash(
        header_value(next_header_line(), "hash", context), context);
    if (hash != expected.run_hash) {
      throw SweepUsageError(strfmt(
          "%s was written by a different sweep invocation: run fingerprint "
          "%s vs this invocation's %s — the grid, master seed, warm-up or "
          "reduction options differ; delete the checkpoint or rerun the "
          "original command line",
          context.c_str(), format_hash(hash).c_str(),
          format_hash(expected.run_hash).c_str()));
    }
    const ShardSpec shard = parse_shard_token(
        header_value(next_header_line(), "shard", context), context);
    if (!(shard == expected.shard)) {
      throw SweepUsageError(strfmt(
          "%s belongs to shard %s, this invocation is shard %s",
          context.c_str(), shard.label().c_str(),
          expected.shard.label().c_str()));
    }
    const std::string csv_flag =
        header_value(next_header_line(), "csv", context);
    const bool with_csv = csv_flag == "1";
    if (!with_csv && csv_flag != "0") {
      throw ResultIoError(context + ": malformed csv flag '" + csv_flag +
                          "'");
    }
    if (with_csv != expected.with_csv) {
      throw SweepUsageError(
          context + (with_csv
                         ? ": was written with --csv; resume with the same "
                           "--csv path or delete the checkpoint"
                         : ": was written without --csv; a resume cannot "
                           "add --csv (the committed scenarios' trace rows "
                           "were never recorded) — delete the checkpoint "
                           "to start over"));
    }
  } catch (const ResultIoError& e) {
    throw SweepUsageError(e.what());
  }
  load.valid_bytes = lines.offset();

  // Body: cells of the owned scenarios in shard grid order, each group
  // sealed by its `done` watermark. The longest valid prefix wins; the
  // first anomaly — torn line, parse failure, identity mismatch, wrong
  // order — ends it (corruption is recomputed, never trusted).
  const std::vector<std::size_t> owned =
      shard_scenarios(scenarios.size(), expected.shard);
  const std::size_t lanes = estimator_labels.size();
  std::vector<ScenarioResult> group;
  while (load.committed_scenarios < owned.size()) {
    const std::size_t scenario_index = owned[load.committed_scenarios];
    const SweepScenario& scenario = scenarios[scenario_index];
    group.clear();
    bool group_ok = true;
    try {
      for (std::size_t e = 0; e < lanes && group_ok; ++e) {
        if (!lines.next_line(line)) {
          group_ok = false;
          break;
        }
        if (line.compare(0, 5, "cell\t") != 0) {
          throw ResultIoError("expected cell record, got '" + line + "'");
        }
        ScenarioResult cell =
            parse_result(std::string_view(line).substr(5));
        if (cell.scenario_index != scenario_index ||
            cell.name != scenario.name ||
            cell.estimator.label() != estimator_labels[e]) {
          throw ResultIoError("cell identity mismatch");
        }
        group.push_back(std::move(cell));
      }
      if (group_ok) {
        if (!lines.next_line(line)) {
          group_ok = false;
        } else {
          FieldReader done(split_fields(line));
          if (done.size() != 3 || done.next() != "done") {
            throw ResultIoError("expected done record, got '" + line + "'");
          }
          if (done.next_size() != scenario_index) {
            throw ResultIoError("done record names the wrong scenario");
          }
          load.csv_bytes = done.next_u64();
        }
      }
    } catch (const std::exception&) {
      group_ok = false;
    }
    if (!group_ok) break;
    for (auto& cell : group) load.results.push_back(std::move(cell));
    ++load.committed_scenarios;
    load.valid_bytes = lines.offset();
  }
  load.discarded_tail =
      lines.torn() || load.valid_bytes < content.size();
  return load;
}

CheckpointWriter::CheckpointWriter(const std::string& path,
                                   const CheckpointHeader& header)
    : out_(path, std::ios::binary | std::ios::trunc) {
  if (!out_) {
    throw std::runtime_error("cannot open checkpoint " + path +
                             " for writing");
  }
  out_.exceptions(std::ios::badbit | std::ios::failbit);
  write_checkpoint_header(out_, header);
  out_.flush();
}

CheckpointWriter::CheckpointWriter(const std::string& path,
                                   std::uint64_t valid_bytes) {
  // Truncate away any torn tail first, then append after the committed
  // prefix — the file never holds bytes we would not trust on the next
  // resume.
  std::error_code ec;
  std::filesystem::resize_file(path, valid_bytes, ec);
  if (ec) {
    throw std::runtime_error("cannot truncate checkpoint " + path + ": " +
                             ec.message());
  }
  out_.open(path, std::ios::binary | std::ios::in | std::ios::out |
                      std::ios::ate);
  if (!out_) {
    throw std::runtime_error("cannot reopen checkpoint " + path);
  }
  out_.exceptions(std::ios::badbit | std::ios::failbit);
}

void CheckpointWriter::record_scenario(std::span<const ScenarioResult> cells,
                                       std::size_t scenario_index,
                                       std::uint64_t csv_bytes) {
  TSC_EXPECTS(!cells.empty());
  for (const auto& cell : cells) {
    out_ << "cell\t" << serialize_result(cell) << '\n';
  }
  out_ << "done\t" << scenario_index << '\t' << csv_bytes << '\n';
  // One flush per scenario bounds the loss window of a kill to the
  // in-flight record — which the loader detects as a torn tail.
  out_.flush();
}

void CheckpointWriter::close() {
  if (out_.is_open()) out_.close();
}

}  // namespace tscclock::sweep
