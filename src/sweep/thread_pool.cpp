#include "sweep/thread_pool.hpp"

#include <chrono>
#include <utility>

namespace tscclock::sweep {

namespace {

/// Identifies the pool worker executing on this thread (nullptr elsewhere),
/// so nested submissions can target the submitter's own queue.
struct WorkerIdentity {
  const ThreadPool* pool = nullptr;
  std::size_t index = 0;
};
thread_local WorkerIdentity t_worker;

}  // namespace

std::size_t ThreadPool::resolve_thread_count(std::size_t requested) {
  if (requested == 0) requested = std::thread::hardware_concurrency();
  return requested == 0 ? 1 : requested;
}

ThreadPool::ThreadPool(std::size_t threads) {
  threads = resolve_thread_count(threads);
  queues_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    queues_.push_back(std::make_unique<Worker>());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  const bool from_worker = t_worker.pool == this;
  std::size_t target = 0;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    ++pending_;
    target = from_worker ? t_worker.index : next_queue_++ % queues_.size();
  }
  {
    std::lock_guard<std::mutex> lock(queues_[target]->mutex);
    if (from_worker) {
      queues_[target]->queue.push_front(std::move(task));
    } else {
      queues_[target]->queue.push_back(std::move(task));
    }
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(state_mutex_);
  all_idle_.wait(lock, [this] { return pending_ == 0; });
  if (first_error_) {
    std::exception_ptr error = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

bool ThreadPool::try_pop_own(std::size_t self, std::function<void()>& task) {
  auto& worker = *queues_[self];
  std::lock_guard<std::mutex> lock(worker.mutex);
  if (worker.queue.empty()) return false;
  task = std::move(worker.queue.front());
  worker.queue.pop_front();
  return true;
}

bool ThreadPool::try_steal(std::size_t self, std::function<void()>& task) {
  // Scan siblings starting just after ourselves so steals spread out instead
  // of all hammering queue 0.
  for (std::size_t k = 1; k < queues_.size(); ++k) {
    auto& victim = *queues_[(self + k) % queues_.size()];
    std::lock_guard<std::mutex> lock(victim.mutex);
    if (victim.queue.empty()) continue;
    task = std::move(victim.queue.back());
    victim.queue.pop_back();
    return true;
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t self) {
  t_worker = {this, self};
  for (;;) {
    std::function<void()> task;
    if (!try_pop_own(self, task) && !try_steal(self, task)) {
      std::unique_lock<std::mutex> lock(state_mutex_);
      if (shutdown_ && pending_ == 0) return;
      // Re-check the queues outside the lock on every wakeup; pending_ > 0
      // covers both queued and currently-executing tasks, so a spurious
      // pass through the loop is cheap and cannot deadlock.
      work_available_.wait_for(lock, std::chrono::milliseconds(50));
      continue;
    }
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(state_mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(state_mutex_);
      --pending_;
      if (pending_ == 0) all_idle_.notify_all();
    }
  }
}

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn) {
  for (std::size_t i = 0; i < n; ++i) {
    pool.submit([&fn, i] { fn(i); });
  }
  pool.wait_idle();
}

}  // namespace tscclock::sweep
