#include "sweep/shard.hpp"

#include "common/serialize.hpp"
#include "common/table.hpp"

namespace tscclock::sweep {

std::string ShardSpec::label() const {
  return strfmt("%zu/%zu", index, count);
}

ShardSpec parse_shard(std::string_view text) {
  const auto die = [&](const std::string& why) -> void {
    throw SweepUsageError("invalid --shard '" + std::string(text) + "': " +
                          why + " (expected I/N with 1 <= I <= N, e.g. 2/8)");
  };
  const std::size_t slash = text.find('/');
  if (slash == std::string_view::npos) die("missing '/'");
  if (text.find('/', slash + 1) != std::string_view::npos) {
    die("more than one '/'");
  }
  ShardSpec shard;
  try {
    shard.index = parse_u64_exact(text.substr(0, slash));
    shard.count = parse_u64_exact(text.substr(slash + 1));
  } catch (const std::exception& e) {
    die(e.what());
  }
  if (shard.count == 0) die("shard count must be >= 1");
  if (shard.index == 0) die("shard indices are 1-based");
  if (shard.index > shard.count) {
    die(strfmt("shard index %zu exceeds shard count %zu", shard.index,
               shard.count));
  }
  return shard;
}

std::vector<std::size_t> shard_scenarios(std::size_t total,
                                         const ShardSpec& shard) {
  std::vector<std::size_t> owned;
  if (shard.count == 0 || shard.index == 0 || shard.index > shard.count) {
    throw SweepUsageError("invalid shard " + shard.label());
  }
  owned.reserve(total / shard.count + 1);
  for (std::size_t i = shard.index - 1; i < total; i += shard.count) {
    owned.push_back(i);
  }
  return owned;
}

}  // namespace tscclock::sweep
