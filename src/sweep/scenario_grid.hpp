// Grid expansion for the multi-scenario sweep (paper §6 / Table 2 campaign).
//
// A GridSpec is the cartesian product
//
//   servers × environments × poll periods × schedule variants
//
// expanded into concrete ScenarioConfigs. Each scenario's RNG seed is derived
// from the master seed and the scenario's *identity* (its descriptor string),
// never from its position in the expanded list: reordering the grid axes, or
// adding a new axis value, cannot silently re-seed existing scenarios.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/time_types.hpp"
#include "harness/estimator_spec.hpp"
#include "sim/events.hpp"
#include "sim/fleet.hpp"
#include "sim/scenario.hpp"

namespace tscclock::sweep {

/// One named fault/switch plan applied to every grid cell it appears in.
/// An empty variant ("steady") runs the plain scenario.
struct ScheduleVariant {
  std::string name = "steady";
  sim::EventSchedule events;
  std::vector<sim::ScenarioConfig::ServerSwitch> server_switches;
};

/// One value of the sweep's fleet axis: how many clients a cell simulates
/// and how they are coupled (sim/fleet.hpp). The default-constructed spec
/// is the single-client cell — it must behave, name and seed exactly like a
/// pre-fleet scenario, which is why single() cells get no name suffix.
struct FleetSpec {
  sim::FleetConfig config;

  /// True when this spec is indistinguishable from a plain Testbed cell.
  [[nodiscard]] bool single() const {
    const sim::FleetConfig defaults;
    return config.n_clients == 1 && !config.shared_congestion &&
           !config.hierarchy &&
           config.bridge_warmup == defaults.bridge_warmup;
  }

  /// Canonical rendering: `fleet` for all-default, otherwise
  /// `fleet(n=…,shared_congestion=…,hierarchy=…,bridge_warmup=…)` with
  /// default-valued keys elided (so equal specs always render equally).
  [[nodiscard]] std::string label() const;
};

/// Parse a comma-separated list of fleet specs — `fleet`, `fleet(n=4)`,
/// `fleet(n=8,shared_congestion=1,hierarchy=1,bridge_warmup=600)`; commas
/// inside parens do not split. Throws SweepUsageError with a precise
/// message on malformed shapes: unknown/duplicate keys, non-numeric or
/// out-of-range values (n must be in [1, 1024]), empty items, unbalanced
/// parens, duplicate specs.
std::vector<FleetSpec> parse_fleet_specs(const std::string& text);

/// Smallest poll period the sweep accepts. The simulated paths have ms-scale
/// minimum delays with heavy-tailed (Pareto) spikes; polling faster than this
/// can schedule the next poll before the previous exchange has fully arrived,
/// violating the oscillator's monotonic-read contract mid-trace.
constexpr Seconds kMinPollPeriod = 1.0;

/// The sweep's cartesian grid plus the scalar knobs shared by every cell.
struct GridSpec {
  std::vector<sim::ServerKind> servers = {
      sim::ServerKind::kLoc, sim::ServerKind::kInt, sim::ServerKind::kExt};
  std::vector<sim::Environment> environments = {
      sim::Environment::kLaboratory, sim::Environment::kMachineRoom};
  std::vector<Seconds> poll_periods = {16.0, 64.0};
  std::vector<ScheduleVariant> schedules = {ScheduleVariant{}};
  /// The fleet axis (default: one single-client value, i.e. the classic
  /// grid). Non-single values append "/fleet(...)" to the cell's identity.
  std::vector<FleetSpec> fleets = {FleetSpec{}};

  /// The estimator axis: every scenario's one exchange stream is fanned into
  /// all of these (harness::MultiEstimatorSession), so the algorithms — and
  /// their parameterized ablation variants, e.g. robust(use_local_rate=0) —
  /// are graded head-to-head on identical packets. Deliberately NOT part of
  /// the scenario identity: the per-scenario RNG seed must stay the same no
  /// matter which estimator specs score the trace.
  std::vector<harness::EstimatorSpec> estimators = {
      harness::EstimatorSpec{"robust", {}}};

  /// Imported trace files (trace/trace_io.hpp), each appended to the
  /// expanded grid as one extra scenario named "trace:<path>" after the
  /// cartesian cells. Trace cells skip the Testbed entirely: the recorded
  /// exchange stream rides the identical ReplaySession → reduction path as
  /// a sim-recorded trace, which is the whole point — a real capture lands
  /// in the same comparison tables. Only replay estimator specs can score
  /// them (an online estimator would need a live drive loop; the CLI
  /// refuses the combination up front).
  std::vector<std::string> trace_inputs;

  Seconds duration = duration::kDay;
  Seconds poll_jitter = 0.25;
  bool use_wire_format = true;
  /// Debug assertion mode: replay every wire-quantized stamp through the
  /// real packet encode/decode and contract-assert it matches the algebraic
  /// fast path. Results are bit-identical either way (the mode only checks),
  /// so this must NEVER enter grid_descriptor() — a checked sweep resumes
  /// from and merges with unchecked artifacts.
  bool check_wire = false;
  std::uint64_t master_seed = 42;

  /// Number of *scenarios* (grid cells plus appended trace cells); each
  /// produces one result per estimator, so a sweep yields
  /// size() × estimators.size() result rows.
  [[nodiscard]] std::size_t size() const {
    return servers.size() * environments.size() * poll_periods.size() *
               schedules.size() * fleets.size() +
           trace_inputs.size();
  }
};

/// One expanded grid cell, ready to drive a Testbed.
struct SweepScenario {
  std::size_t index = 0;  ///< position in the expanded grid (reporting order)
  std::string name;       ///< canonical descriptor, e.g. "ServerInt/machine-room/poll16/steady"
  sim::ScenarioConfig config;
  FleetSpec fleet;  ///< fleet-axis value; single() cells drive a Testbed
  /// Non-empty for imported-trace cells: the trace file replayed instead of
  /// driving a Testbed. The file is re-read at run time (cells are
  /// independent work units; a vanished/corrupted file fails its cell, not
  /// the sweep).
  std::string trace_path;

  [[nodiscard]] bool is_trace() const { return !trace_path.empty(); }
};

/// Canonical descriptor of a grid cell; doubles as the seed-derivation
/// identity, so it must depend only on what the scenario *is*.
std::string scenario_name(sim::ServerKind server, sim::Environment environment,
                          Seconds poll_period, const std::string& schedule);

/// Deterministic per-scenario seed: splitmix64 finalization of the master
/// seed XOR an FNV-1a hash of the identity string. Independent of grid
/// enumeration order by construction.
std::uint64_t scenario_seed(std::uint64_t master_seed,
                            const std::string& identity);

/// Expand the cartesian product in deterministic axis order
/// (servers → environments → poll periods → schedules).
std::vector<SweepScenario> expand_grid(const GridSpec& grid);

/// Canonical, exhaustive text rendering of everything in the GridSpec that
/// can influence a result cell: every axis value (schedules including their
/// event/switch contents, estimators by canonical label), the shared scalar
/// knobs and the master seed, with doubles in exact hexfloat. Two GridSpecs
/// produce the same descriptor iff a sweep over them is guaranteed to
/// produce identical results — this string (hashed, together with the
/// run-affecting SweepOptions) is the fingerprint that shard dumps and
/// checkpoints use to refuse mixing incompatible invocations.
std::string grid_descriptor(const GridSpec& grid);

}  // namespace tscclock::sweep
