// Machine-readable sweep artifacts: versioned per-shard result dumps,
// append-only resumable checkpoints, and the merge that reassembles an
// N-way shard split into the exact single-process sweep.
//
// Three artifacts share one cell serialization (serialize_result /
// parse_result — every ScenarioResult field, doubles in exact hexfloat so
// parse ∘ serialize is bit-identity):
//
//   * shard dump  — `sweep --shard i/N --dump-results FILE` writes a header
//     (format version, run fingerprint, shard shape, grid totals) plus one
//     line per (scenario, estimator) cell. tools/sweep-merge validates a
//     set of dumps (same version, same fingerprint, indices 1..N exactly
//     once, disjoint exact coverage) and reassembles the global grid-order
//     result vector — print_sweep_report over it is byte-identical to the
//     unsharded run, pinned by golden tests.
//
//   * checkpoint  — `sweep --checkpoint FILE` appends each owned scenario's
//     cells plus a `done` watermark as the grid-order drainer commits it.
//     A resumed run loads the longest valid committed prefix (a torn
//     trailing record — kill mid-write — is discarded and recomputed),
//     refuses fingerprint/shard/option mismatches with a precise error, and
//     produces bit-identical final output. The `done` record carries the
//     trace-CSV byte watermark so a resume can keep the committed CSV
//     prefix and regenerate only the tail.
//
//   * trace merge — per-shard `--csv` dumps are re-interleaved into the
//     single-process trace CSV by walking the merged grid order and copying
//     each scenario's contiguous row block from its owning shard's file.
#pragma once

#include <cstdint>
#include <fstream>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "sweep/shard.hpp"
#include "sweep/sweep.hpp"

namespace tscclock::sweep {

/// Format version shared by shard dumps and checkpoints. Bump on any layout
/// change; readers refuse other versions with a message naming both.
/// v2: the fleet axis — four cell fields appended (clients,
/// fleet_dispersion, fleet_worst_p99, fleet_pairwise_spread).
/// v3: the trace-input axis — two cell fields appended (from_trace,
/// relative_only).
constexpr int kResultFormatVersion = 3;

/// Malformed, truncated, version-skewed or mutually inconsistent sweep
/// artifacts. tools/sweep-merge prints the message verbatim and exits 2.
class ResultIoError : public std::runtime_error {
 public:
  explicit ResultIoError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Fingerprint of everything that determines a sweep's numbers: the full
/// grid descriptor (axes, schedules' contents, estimator labels, duration,
/// seed — see grid_descriptor) plus the result-affecting options (warm-up
/// cut, reduction engine). Shards/checkpoints with different fingerprints
/// must never be mixed; paths and thread counts deliberately do not enter.
std::uint64_t sweep_run_hash(const GridSpec& grid, Seconds discard_warmup,
                             bool streaming_reduction);

// -- Cell serialization ------------------------------------------------------

/// One ScenarioResult as a single tab-separated line (no trailing newline):
/// identity, grid coordinates, estimator label, failure state, counters,
/// both SeriesSummaries, ADEV points, steps and the full ClockStatus.
/// Doubles are hexfloat, strings are escape_field'ed — parse_result returns
/// a bit-identical value and serialize_result(parse_result(x)) == x.
std::string serialize_result(const ScenarioResult& result);

/// Inverse of serialize_result. Throws ResultIoError on a wrong field
/// count or any malformed field (the torn-record detector of the resume
/// path: a partial trailing line never parses).
ScenarioResult parse_result(std::string_view line);

// -- Shard result dumps ------------------------------------------------------

struct ShardDumpHeader {
  int version = kResultFormatVersion;
  std::uint64_t run_hash = 0;
  ShardSpec shard;
  /// Size of the *full* expanded grid (all shards), so merge can verify
  /// exact coverage and reprint the single-process banner.
  std::size_t scenario_total = 0;
  Seconds duration = 0;           ///< per-scenario simulated duration [s]
  std::uint64_t master_seed = 0;
  /// Canonical estimator labels in grid axis order (the cell minor order).
  std::vector<std::string> estimator_labels;

  bool operator==(const ShardDumpHeader&) const = default;
};

struct ShardDump {
  ShardDumpHeader header;
  /// This shard's cells in shard grid order, scenario-major (exactly
  /// owned_scenarios × estimator_labels.size() rows).
  std::vector<ScenarioResult> results;
};

/// Open `path` (truncating) and write the header immediately — the sweep
/// calls this before any scenario runs so an unwritable dump path fails
/// fast — then write_cells() completes the file when the results exist.
class ShardDumpWriter {
 public:
  /// `cell_count` is the number of result lines the dump will hold (known
  /// up front: owned scenarios × lanes; FAILED cells are ordinary lines).
  ShardDumpWriter(const std::string& path, const ShardDumpHeader& header,
                  std::size_t cell_count);

  /// Write every cell plus the end marker, flush and close. Throws on any
  /// write failure; `results.size()` must equal the promised cell count.
  void write_cells(std::span<const ScenarioResult> results);

 private:
  std::string path_;
  std::size_t cell_count_;
};

/// Read and validate one shard dump (header sanity, promised cell count,
/// end marker present). Throws ResultIoError with a precise message on
/// version skew, truncation or any malformed line.
ShardDump read_shard_dump(const std::string& path);

// -- Merge -------------------------------------------------------------------

struct MergedSweep {
  /// Representative header (shard = 1/1): run fingerprint, totals, banner
  /// fields — everything needed to reprint the single-process report.
  ShardDumpHeader header;
  /// The full grid's cells in global grid order, scenario-major — exactly
  /// what the unsharded ScenarioSweep::run would have returned.
  std::vector<ScenarioResult> results;
};

/// Validate a set of shard dumps as one N-way split — same version and run
/// fingerprint, same totals, shard indices 1..N each exactly once, every
/// scenario covered exactly once by its round-robin owner — and reassemble
/// the global result vector. Throws ResultIoError naming the first
/// inconsistency (missing shard, duplicate shard, skewed fingerprint, …).
MergedSweep merge_shard_dumps(const std::vector<ShardDump>& dumps);

/// Re-interleave per-shard `--csv` trace dumps into the single-process
/// trace CSV: `trace_paths` pairs positionally with `dumps` (any shard
/// order); rows are copied per scenario block following `merged`'s global
/// grid order. Headers must agree; leftover unclaimed rows are an error.
void merge_trace_csv(const MergedSweep& merged,
                     const std::vector<ShardDump>& dumps,
                     const std::vector<std::string>& trace_paths,
                     const std::string& out_path);

// -- Checkpoints -------------------------------------------------------------

struct CheckpointHeader {
  int version = kResultFormatVersion;
  std::uint64_t run_hash = 0;
  ShardSpec shard;
  /// Whether the run maintains a --csv trace dump alongside the checkpoint.
  /// Recorded so a resume cannot silently change its mind: the committed
  /// prefix's trace rows exist only if the original run wrote them.
  bool with_csv = false;

  bool operator==(const CheckpointHeader&) const = default;
};

/// What survives of an existing checkpoint, validated against the resuming
/// invocation's expectations.
struct CheckpointLoad {
  /// Cells of the committed scenario prefix, shard grid order,
  /// scenario-major (committed_scenarios × lanes entries).
  std::vector<ScenarioResult> results;
  std::size_t committed_scenarios = 0;
  /// Trace-CSV byte watermark of the last committed scenario (0 when none
  /// committed or the run has no --csv).
  std::uint64_t csv_bytes = 0;
  /// File offset of the end of the valid committed prefix; a resume
  /// truncates the checkpoint here before appending.
  std::uint64_t valid_bytes = 0;
  /// True when trailing bytes after the committed prefix were discarded
  /// (torn record from a kill mid-write, or trailing corruption).
  bool discarded_tail = false;
};

/// Load `path` for a resume. Header mismatches against `expected` —
/// version skew, run-fingerprint mismatch (different grid/options), shard
/// shape mismatch, --csv presence mismatch — throw SweepUsageError with a
/// precise message (tools/sweep exits 2). Body records are validated
/// against the invocation's own scenario identities (`scenarios` filtered
/// by expected.shard) and estimator labels; the longest valid committed
/// prefix wins and anything after it is reported via discarded_tail.
CheckpointLoad load_checkpoint(const std::string& path,
                               const CheckpointHeader& expected,
                               const std::vector<SweepScenario>& scenarios,
                               std::span<const std::string> estimator_labels);

/// Append-only checkpoint writer. Construct fresh (truncate + header) or
/// resuming (truncate to the loaded valid_bytes, then append). Each
/// record_scenario call appends the scenario's lane cells plus its `done`
/// watermark and flushes, so a kill loses at most the in-flight scenario.
class CheckpointWriter {
 public:
  /// Start a fresh checkpoint (truncates `path`, writes the header).
  CheckpointWriter(const std::string& path, const CheckpointHeader& header);

  /// Resume an existing checkpoint: truncate to `valid_bytes` (dropping a
  /// torn tail) and append after the committed prefix.
  CheckpointWriter(const std::string& path, std::uint64_t valid_bytes);

  /// Append one committed scenario: its cells (every estimator lane, in
  /// lane order) and the done record carrying the scenario's grid index
  /// and the trace-CSV byte watermark after its rows were flushed.
  void record_scenario(std::span<const ScenarioResult> cells,
                       std::size_t scenario_index, std::uint64_t csv_bytes);

  /// Flush and close with error checking; idempotent.
  void close();

 private:
  std::ofstream out_;
};

}  // namespace tscclock::sweep
