#include "sweep/sweep.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <ostream>

#include "common/table.hpp"
#include "harness/sinks.hpp"
#include "sweep/thread_pool.hpp"

namespace tscclock::sweep {

namespace {

/// Seed a result with the scenario's identity/grid coordinates (shared by
/// the success and failure paths so FAILED rows group correctly).
ScenarioResult result_for(const SweepScenario& scenario) {
  ScenarioResult result;
  result.scenario_index = scenario.index;
  result.name = scenario.name;
  result.seed = scenario.config.seed;
  result.server = scenario.config.server;
  result.environment = scenario.config.environment;
  return result;
}

}  // namespace

ScenarioResult run_scenario(const SweepScenario& scenario,
                            Seconds discard_warmup,
                            harness::SampleSink* trace_sink) {
  ScenarioResult result = result_for(scenario);

  // The drive loop is the shared harness::ClockSession — the same canonical
  // exchange-processing sequence the figure benches use (bench::run_clock).
  // The sweep's one convention difference is declared in the config: warm-up
  // is cut on the observable tb_stamp rather than on ground truth.
  sim::Testbed testbed(scenario.config);
  harness::SessionConfig config;
  config.params = core::Params::for_poll_period(scenario.config.poll_period);
  config.discard_warmup = discard_warmup;
  config.warmup_policy = harness::WarmupPolicy::kObservable;
  // Trace dumps want gap-visible streams (lost and warm-up rows, flagged);
  // the reducer filters on `evaluated` either way.
  config.emit_unevaluated = trace_sink != nullptr;
  harness::ClockSession session(config, testbed.nominal_period());

  harness::ReducerSink reducer(scenario.config.poll_period);
  session.add_sink(reducer);
  if (trace_sink != nullptr) session.add_sink(*trace_sink);

  const auto& summary = session.run(testbed);
  result.exchanges = summary.exchanges;
  result.lost = summary.lost;
  result.evaluated = summary.evaluated;
  // The testbed owns the slot arithmetic; the session reads its counter
  // after the drain, keeping polls/skipped exact by construction.
  result.polls = static_cast<std::size_t>(summary.polls_enumerated);
  result.skipped = result.polls - result.exchanges;
  result.final_status = summary.final_status;

  const auto reduction = reducer.reduce();
  result.clock_error = reduction.clock_error;
  result.offset_error = reduction.offset_error;
  result.adev_short_tau = reduction.adev_short_tau;
  result.adev_short = reduction.adev_short;
  result.adev_long_tau = reduction.adev_long_tau;
  result.adev_long = reduction.adev_long;
  return result;
}

namespace {

ScenarioResult failed_result(const SweepScenario& scenario,
                             std::string error) {
  ScenarioResult result = result_for(scenario);
  result.failed = true;
  result.error = std::move(error);
  return result;
}

}  // namespace

ScenarioSweep::ScenarioSweep(GridSpec grid)
    : grid_(std::move(grid)), scenarios_(expand_grid(grid_)) {}

std::vector<ScenarioResult> ScenarioSweep::run(
    const SweepOptions& options) const {
  std::vector<ScenarioResult> results(scenarios_.size());
  // Trace dumping buffers each scenario's records in its own collector (the
  // workers must not share a file writer) and serializes them to the CSV in
  // grid order, so the dump is deterministic like the rest of the reduction.
  // The sink is opened before any work runs — an unwritable path must fail
  // fast, not after a long sweep has completed. Completed scenarios are
  // flushed (and their buffers freed) as soon as every earlier grid cell has
  // been written, bounding memory to the pool's completion skew rather than
  // the whole grid.
  const bool dump_csv = !options.csv_path.empty();
  csv_error_.clear();
  std::optional<harness::CsvTraceSink> csv;
  std::vector<std::unique_ptr<harness::CollectorSink>> collectors;
  std::vector<char> collected;
  std::mutex csv_mutex;
  std::size_t next_to_write = 0;
  bool draining = false;
  if (dump_csv) {
    csv.emplace(options.csv_path);
    collectors.resize(scenarios_.size());
    for (auto& c : collectors) c = std::make_unique<harness::CollectorSink>();
    collected.assign(scenarios_.size(), 0);
  }

  // No point spawning more workers than there are scenarios.
  ThreadPool pool(std::min(ThreadPool::resolve_thread_count(options.threads),
                           scenarios_.size()));
  const Seconds warmup = options.discard_warmup;
  parallel_for(pool, scenarios_.size(), [&](std::size_t i) {
    // Contain failures to their grid cell: one throwing scenario must not
    // discard the rest of a long sweep.
    try {
      results[i] = run_scenario(scenarios_[i], warmup,
                                dump_csv ? collectors[i].get() : nullptr);
    } catch (const std::exception& e) {
      results[i] = failed_result(scenarios_[i], e.what());
    } catch (...) {
      results[i] = failed_result(scenarios_[i], "unknown exception");
    }
    if (!dump_csv) return;
    std::unique_lock<std::mutex> lock(csv_mutex);
    collected[i] = 1;
    // One drainer at a time serializes ready cells to the file in grid
    // order; the file I/O happens outside the lock, so other finishing
    // workers only ever take the mutex to mark completion (never stalling
    // behind a write). Cells completed while the drainer was writing are
    // picked up when it re-checks under the lock.
    if (draining) return;
    draining = true;
    while (next_to_write < scenarios_.size() && collected[next_to_write]) {
      const std::size_t index = next_to_write;
      const auto buffer = std::move(collectors[index]);
      ++next_to_write;
      lock.unlock();
      // A FAILED cell's buffer holds a silently truncated trace — drop it
      // (its absence from the dump mirrors the FAILED row in the report).
      // A mid-run write failure (disk full) aborts the dump but not the
      // sweep: buffers still drain (bounded memory) and the error is
      // reported via csv_error() alongside the intact results.
      if (csv && !results[index].failed) {
        try {
          csv->set_scenario(scenarios_[index].name);
          for (const auto& record : buffer->records()) csv->on_sample(record);
        } catch (const std::exception& e) {
          csv_error_ = e.what();
          csv.reset();
        }
      }
      lock.lock();
    }
    draining = false;
  });
  if (csv) {
    try {
      csv->close();  // surface a failed final flush, not just failed writes
    } catch (const std::exception& e) {
      csv_error_ = e.what();
    }
  }
  return results;
}

namespace {

/// Medians-of-medians aggregate for one group key (server kind or
/// environment).
struct GroupAggregate {
  std::vector<double> medians;       ///< per-scenario |median| clock error
  std::vector<double> tails;         ///< per-scenario worst |tail| clock error
  std::size_t scenarios = 0;
  std::size_t evaluated = 0;
  std::size_t lost = 0;
};

void add_to_group(GroupAggregate& group, const ScenarioResult& r) {
  ++group.scenarios;
  group.evaluated += r.evaluated;
  group.lost += r.lost;
  // A scenario with no evaluable points has no error summary; counting its
  // zero-initialized percentiles would misread total data loss as perfect
  // synchronization.
  if (r.evaluated == 0) return;
  group.medians.push_back(std::fabs(r.clock_error.percentiles.p50));
  // The error distributions are negatively biased (asymmetric forward
  // paths), so the worst tail can sit at either percentile extreme.
  group.tails.push_back(std::max(std::fabs(r.clock_error.percentiles.p01),
                                 std::fabs(r.clock_error.percentiles.p99)));
}

void print_group_table(std::ostream& os, const std::string& axis,
                       const std::map<std::string, GroupAggregate>& groups) {
  TablePrinter table({axis, "scenarios", "evaluated", "lost",
                      "median |err| [us]", "worst |tail| [us]"});
  for (const auto& [key, group] : groups) {
    const bool has_data = !group.medians.empty();
    table.add_row(
        {key, format_count(group.scenarios), format_count(group.evaluated),
         format_count(group.lost),
         has_data ? strfmt("%.1f", percentile(group.medians, 0.5) * 1e6)
                  : std::string("n/a"),
         has_data ? strfmt("%.1f", *std::max_element(group.tails.begin(),
                                                     group.tails.end()) *
                                       1e6)
                  : std::string("n/a")});
  }
  table.print(os);
}

}  // namespace

void print_sweep_report(std::ostream& os,
                        const std::vector<ScenarioResult>& results) {
  print_banner(os, "Per-scenario summary");
  TablePrinter table({"scenario", "polls", "skip", "lost", "eval", "sw",
                      "median [us]", "p99 [us]", "ADEV(short)", "ADEV(long)"});
  for (const auto& r : results) {
    if (r.failed) {
      table.add_row({r.name, "FAILED", "-", "-", "-", "-", "-", "-", "-",
                     "-"});
      continue;
    }
    // No evaluable points → no error statistics; zeros here would be
    // indistinguishable from a perfect run.
    const bool has_data = r.evaluated > 0;
    table.add_row({r.name, format_count(r.polls), format_count(r.skipped),
                   format_count(r.lost), format_count(r.evaluated),
                   format_count(r.final_status.server_changes),
                   has_data ? strfmt("%.1f", r.clock_error.percentiles.p50 * 1e6)
                            : std::string("n/a"),
                   has_data ? strfmt("%.1f", r.clock_error.percentiles.p99 * 1e6)
                            : std::string("n/a"),
                   r.adev_short > 0 ? strfmt("%.3f PPM", to_ppm(r.adev_short))
                                    : std::string("n/a"),
                   r.adev_long > 0 ? strfmt("%.3f PPM", to_ppm(r.adev_long))
                                   : std::string("n/a")});
  }
  table.print(os);
  for (const auto& r : results) {
    if (r.failed) os << "FAILED " << r.name << ": " << r.error << "\n";
  }

  std::map<std::string, GroupAggregate> by_server;
  std::map<std::string, GroupAggregate> by_environment;
  for (const auto& r : results) {
    if (r.failed) continue;
    add_to_group(by_server[sim::to_string(r.server)], r);
    add_to_group(by_environment[sim::to_string(r.environment)], r);
  }

  print_banner(os, "Aggregate by server");
  print_group_table(os, "server", by_server);
  print_banner(os, "Aggregate by environment");
  print_group_table(os, "environment", by_environment);
}

}  // namespace tscclock::sweep
