#include "sweep/sweep.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <map>
#include <ostream>
#include <span>

#include "common/allan.hpp"
#include "common/table.hpp"
#include "core/server_change.hpp"
#include "sweep/thread_pool.hpp"

namespace tscclock::sweep {

namespace {

/// ADEV averaging factors: τ = factor · poll period. Shared between the tau
/// labelling in run_scenario and the factor list in fill_adev — the two are
/// matched by exact float tau equality, so they must come from one place.
constexpr std::size_t kAdevShortFactor = 16;
constexpr std::size_t kAdevLongFactor = 256;

/// Fill both ADEV scales from one resampled series; allan_deviation skips
/// factors the trace is too short to support, leaving the 0 sentinel.
///
/// Computed over the longest stretch free of gaps > 4·tau0: interpolating
/// across an outage would fabricate collinear samples whose second
/// differences are exactly zero, biasing ADEV low for precisely the
/// robustness schedules the sweep is meant to compare. Ordinary packet loss
/// (a 2·tau0 hole) stays within one stretch.
void fill_adev(const std::vector<double>& times,
               const std::vector<double>& errors, double tau0,
               ScenarioResult& result) {
  if (times.size() < 3) return;
  std::size_t best_begin = 0;
  std::size_t best_len = 0;
  std::size_t begin = 0;
  for (std::size_t i = 1; i <= times.size(); ++i) {
    if (i == times.size() || times[i] - times[i - 1] > 4 * tau0) {
      if (i - begin > best_len) {
        best_len = i - begin;
        best_begin = begin;
      }
      begin = i;
    }
  }
  if (best_len < 3) return;
  const std::span<const double> seg_times(times.data() + best_begin, best_len);
  const std::span<const double> seg_errors(errors.data() + best_begin,
                                           best_len);
  const auto regular = resample_linear(seg_times, seg_errors, tau0);
  const std::size_t factors[] = {kAdevShortFactor, kAdevLongFactor};
  for (const auto& point : allan_deviation(regular, tau0, factors)) {
    if (point.tau == result.adev_short_tau) result.adev_short = point.deviation;
    if (point.tau == result.adev_long_tau) result.adev_long = point.deviation;
  }
}

}  // namespace

namespace {

/// Seed a result with the scenario's identity/grid coordinates (shared by
/// the success and failure paths so FAILED rows group correctly).
ScenarioResult result_for(const SweepScenario& scenario) {
  ScenarioResult result;
  result.scenario_index = scenario.index;
  result.name = scenario.name;
  result.seed = scenario.config.seed;
  result.server = scenario.config.server;
  result.environment = scenario.config.environment;
  return result;
}

}  // namespace

ScenarioResult run_scenario(const SweepScenario& scenario,
                            Seconds discard_warmup) {
  ScenarioResult result = result_for(scenario);

  // Drive loop closely mirrors bench::run_clock (bench/support.cpp) with two
  // deliberate differences: server changes are forwarded to the clock (the
  // sweep grid includes switching schedules; the figure benches don't), and
  // warm-up is cut on the observable tb_stamp rather than ground truth.
  // Keep the exchange-processing sequence in step with that loop.
  sim::Testbed testbed(scenario.config);
  const core::Params params =
      core::Params::for_poll_period(scenario.config.poll_period);
  core::TscNtpClock clock(params, testbed.nominal_period());
  core::ServerChangeDetector server_changes;

  std::vector<double> times;          ///< server receive stamps [s]
  std::vector<double> clock_errors;   ///< Ca(Tf) − Tg
  std::vector<double> offset_errors;  ///< θ̂ − θg

  while (auto ex = testbed.next()) {
    ++result.exchanges;
    if (ex->lost) {
      ++result.lost;
      continue;
    }

    // Identity tracking on the transport-level endpoint id (≈ the server
    // address, which a real client knows because it chose the server —
    // §6.1's campaign re-pointed the daemon explicitly). Not the NTP
    // reference-id field: that can be identical across distinct servers
    // (kInt and kLoc both report "GPS"). A change restarts the RTT filter
    // and deweights the offset window.
    if (server_changes.observe(
            core::ServerIdentity{ex->server_id, ex->server_stratum},
            ex->index)) {
      clock.notify_server_change();
    }

    const core::RawExchange raw{ex->ta_counts, ex->tb_stamp, ex->te_stamp,
                                ex->tf_counts};
    const auto report = clock.process_exchange(raw);
    if (!ex->ref_available) continue;
    if (ex->tb_stamp < discard_warmup) continue;

    ++result.evaluated;
    const Seconds reference_offset =
        clock.uncorrected_time(ex->tf_counts) - ex->tg;
    times.push_back(ex->tb_stamp);
    clock_errors.push_back(clock.absolute_time(ex->tf_counts) - ex->tg);
    offset_errors.push_back(report.offset_estimate - reference_offset);
  }

  // The testbed owns the slot arithmetic; reading its counter after the
  // drain keeps polls/skipped exact by construction.
  result.polls = static_cast<std::size_t>(testbed.polls_enumerated());
  result.skipped = result.polls - result.exchanges;
  // A trace can end with no evaluable points (warm-up discard covering the
  // whole duration, or total loss); summarize() requires a non-empty series.
  if (!clock_errors.empty()) result.clock_error = summarize(clock_errors);
  if (!offset_errors.empty()) result.offset_error = summarize(offset_errors);

  const double poll = scenario.config.poll_period;
  result.adev_short_tau = static_cast<double>(kAdevShortFactor) * poll;
  result.adev_long_tau = static_cast<double>(kAdevLongFactor) * poll;
  fill_adev(times, clock_errors, poll, result);

  result.final_status = clock.status();
  return result;
}

namespace {

ScenarioResult failed_result(const SweepScenario& scenario,
                             std::string error) {
  ScenarioResult result = result_for(scenario);
  result.failed = true;
  result.error = std::move(error);
  return result;
}

}  // namespace

ScenarioSweep::ScenarioSweep(GridSpec grid)
    : grid_(std::move(grid)), scenarios_(expand_grid(grid_)) {}

std::vector<ScenarioResult> ScenarioSweep::run(
    const SweepOptions& options) const {
  std::vector<ScenarioResult> results(scenarios_.size());
  // No point spawning more workers than there are scenarios.
  ThreadPool pool(std::min(ThreadPool::resolve_thread_count(options.threads),
                           scenarios_.size()));
  const Seconds warmup = options.discard_warmup;
  parallel_for(pool, scenarios_.size(), [&](std::size_t i) {
    // Contain failures to their grid cell: one throwing scenario must not
    // discard the rest of a long sweep.
    try {
      results[i] = run_scenario(scenarios_[i], warmup);
    } catch (const std::exception& e) {
      results[i] = failed_result(scenarios_[i], e.what());
    } catch (...) {
      results[i] = failed_result(scenarios_[i], "unknown exception");
    }
  });
  return results;
}

namespace {

/// Medians-of-medians aggregate for one group key (server kind or
/// environment).
struct GroupAggregate {
  std::vector<double> medians;       ///< per-scenario |median| clock error
  std::vector<double> tails;         ///< per-scenario worst |tail| clock error
  std::size_t scenarios = 0;
  std::size_t evaluated = 0;
  std::size_t lost = 0;
};

void add_to_group(GroupAggregate& group, const ScenarioResult& r) {
  ++group.scenarios;
  group.evaluated += r.evaluated;
  group.lost += r.lost;
  // A scenario with no evaluable points has no error summary; counting its
  // zero-initialized percentiles would misread total data loss as perfect
  // synchronization.
  if (r.evaluated == 0) return;
  group.medians.push_back(std::fabs(r.clock_error.percentiles.p50));
  // The error distributions are negatively biased (asymmetric forward
  // paths), so the worst tail can sit at either percentile extreme.
  group.tails.push_back(std::max(std::fabs(r.clock_error.percentiles.p01),
                                 std::fabs(r.clock_error.percentiles.p99)));
}

void print_group_table(std::ostream& os, const std::string& axis,
                       const std::map<std::string, GroupAggregate>& groups) {
  TablePrinter table({axis, "scenarios", "evaluated", "lost",
                      "median |err| [us]", "worst |tail| [us]"});
  for (const auto& [key, group] : groups) {
    const bool has_data = !group.medians.empty();
    table.add_row(
        {key, strfmt("%zu", group.scenarios), strfmt("%zu", group.evaluated),
         strfmt("%zu", group.lost),
         has_data ? strfmt("%.1f", percentile(group.medians, 0.5) * 1e6)
                  : std::string("n/a"),
         has_data ? strfmt("%.1f", *std::max_element(group.tails.begin(),
                                                     group.tails.end()) *
                                       1e6)
                  : std::string("n/a")});
  }
  table.print(os);
}

}  // namespace

void print_sweep_report(std::ostream& os,
                        const std::vector<ScenarioResult>& results) {
  print_banner(os, "Per-scenario summary");
  TablePrinter table({"scenario", "polls", "skip", "lost", "eval", "sw",
                      "median [us]", "p99 [us]", "ADEV(short)", "ADEV(long)"});
  for (const auto& r : results) {
    if (r.failed) {
      table.add_row({r.name, "FAILED", "-", "-", "-", "-", "-", "-", "-",
                     "-"});
      continue;
    }
    // No evaluable points → no error statistics; zeros here would be
    // indistinguishable from a perfect run.
    const bool has_data = r.evaluated > 0;
    table.add_row({r.name, strfmt("%zu", r.polls), strfmt("%zu", r.skipped),
                   strfmt("%zu", r.lost), strfmt("%zu", r.evaluated),
                   strfmt("%llu", static_cast<unsigned long long>(
                                      r.final_status.server_changes)),
                   has_data ? strfmt("%.1f", r.clock_error.percentiles.p50 * 1e6)
                            : std::string("n/a"),
                   has_data ? strfmt("%.1f", r.clock_error.percentiles.p99 * 1e6)
                            : std::string("n/a"),
                   r.adev_short > 0 ? strfmt("%.3f PPM", to_ppm(r.adev_short))
                                    : std::string("n/a"),
                   r.adev_long > 0 ? strfmt("%.3f PPM", to_ppm(r.adev_long))
                                   : std::string("n/a")});
  }
  table.print(os);
  for (const auto& r : results) {
    if (r.failed) os << "FAILED " << r.name << ": " << r.error << "\n";
  }

  std::map<std::string, GroupAggregate> by_server;
  std::map<std::string, GroupAggregate> by_environment;
  for (const auto& r : results) {
    if (r.failed) continue;
    add_to_group(by_server[sim::to_string(r.server)], r);
    add_to_group(by_environment[sim::to_string(r.environment)], r);
  }

  print_banner(os, "Aggregate by server");
  print_group_table(os, "server", by_server);
  print_banner(os, "Aggregate by environment");
  print_group_table(os, "environment", by_environment);
}

}  // namespace tscclock::sweep
