#include "sweep/sweep.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <ostream>
#include <span>
#include <stdexcept>

#include "common/contracts.hpp"
#include "common/table.hpp"
#include "harness/fleet_session.hpp"
#include "harness/replay.hpp"
#include "harness/sinks.hpp"
#include "sim/fleet.hpp"
#include "sweep/result_io.hpp"
#include "sweep/thread_pool.hpp"
#include "trace/trace_io.hpp"

namespace tscclock::sweep {

namespace {

/// Seed a result with the scenario's identity/grid coordinates (shared by
/// the success and failure paths so FAILED rows group correctly).
ScenarioResult result_for(const SweepScenario& scenario,
                          const harness::EstimatorSpec& estimator) {
  ScenarioResult result;
  result.scenario_index = scenario.index;
  result.name = scenario.name;
  result.seed = scenario.config.seed;
  result.server = scenario.config.server;
  result.environment = scenario.config.environment;
  result.estimator = estimator;
  return result;
}

/// Either reduction engine behind one reduce() call: the exact buffered
/// sink (golden determinism) or the O(1)-memory streaming sink.
struct LaneReducer {
  std::optional<harness::ReducerSink> exact;
  std::optional<harness::StreamingReducerSink> streaming;

  LaneReducer(double tau0, bool use_streaming,
              harness::GroundTruthMode mode =
                  harness::GroundTruthMode::kReference) {
    if (use_streaming)
      streaming.emplace(tau0, 16, 256, mode);
    else
      exact.emplace(tau0, 16, 256, mode);
  }
  [[nodiscard]] harness::SampleSink& sink() {
    return streaming ? static_cast<harness::SampleSink&>(*streaming)
                     : static_cast<harness::SampleSink&>(*exact);
  }
  [[nodiscard]] harness::ReducerSink::Reduction reduce() const {
    return streaming ? streaming->reduce() : exact->reduce();
  }
};

/// Pools every fleet lane's evaluated stream into one population summary of
/// the clock and offset errors. The pooled interleaving is deterministic
/// (client-major within each merged chunk) but its tb stamps are
/// non-monotone across clients, so the pool never computes ADEV — a fleet
/// cell's ADEV columns come from a client-0 LaneReducer instead. Exact mode
/// buffers and summarize()s (sorted percentiles, order-insensitive);
/// streaming mode runs the same Welford/P² arithmetic as the lane sinks.
class FleetPoolSink final : public harness::SampleSink {
 public:
  explicit FleetPoolSink(bool use_streaming) : streaming_(use_streaming) {}

  void on_sample(const harness::SampleRecord& record) override {
    if (record.evaluated) add(record.abs_clock_error, record.offset_error);
  }
  [[nodiscard]] bool wants_batch() const override { return true; }
  void on_batch(const harness::SampleBatch& batch) override {
    for (std::size_t i = 0; i < batch.size(); ++i)
      add(batch.abs_clock_error[i], batch.offset_error[i]);
  }

  [[nodiscard]] SeriesSummary clock_error() const {
    return streaming_ ? clock_stream_.summary() : summarize(clock_errors_);
  }
  [[nodiscard]] SeriesSummary offset_error() const {
    return streaming_ ? offset_stream_.summary() : summarize(offset_errors_);
  }

 private:
  void add(double clock_error, double offset_error) {
    if (streaming_) {
      clock_stream_.add(clock_error);
      offset_stream_.add(offset_error);
    } else {
      clock_errors_.push_back(clock_error);
      offset_errors_.push_back(offset_error);
    }
  }

  bool streaming_;
  std::vector<double> clock_errors_;
  std::vector<double> offset_errors_;
  StreamingSeriesSummary clock_stream_;
  StreamingSeriesSummary offset_stream_;
};

/// The fleet-cell drive behind run_scenario_multi: one FleetTestbed +
/// FleetSession per estimator spec instead of one shared Testbed drain.
/// Each spec regenerates the fleet's merged stream from scratch — the
/// generator is deterministic in the scenario identity, so every spec
/// scores the identical packets (the estimator axis never reseeds), at the
/// cost of one extra generation pass per extra spec.
std::vector<ScenarioResult> run_fleet_scenario_multi(
    const SweepScenario& scenario,
    std::span<const harness::EstimatorSpec> estimators,
    Seconds discard_warmup, std::span<harness::SampleSink* const> trace_sinks,
    bool streaming_reduction) {
  const harness::EstimatorRegistry& registry = harness::estimator_registry();
  for (const auto& spec : estimators) {
    if (registry.is_replay(spec)) {
      throw std::runtime_error(
          "estimator '" + spec.label() +
          "' replays a recorded single-client trace and cannot score a "
          "multi-client fleet cell — drop the fleet(...) axis value or the "
          "replay spec");
    }
  }

  harness::SessionConfig config;
  config.params = core::Params::for_poll_period(scenario.config.poll_period);
  config.discard_warmup = discard_warmup;
  config.warmup_policy = harness::WarmupPolicy::kObservable;

  std::vector<ScenarioResult> results;
  results.reserve(estimators.size());
  for (std::size_t e = 0; e < estimators.size(); ++e) {
    harness::SampleSink* trace =
        trace_sinks.empty() ? nullptr : trace_sinks[e];
    sim::FleetTestbed fleet(scenario.config, scenario.fleet.config);
    harness::FleetSession session;
    FleetPoolSink pool(streaming_reduction);
    LaneReducer reference(scenario.config.poll_period, streaming_reduction);
    harness::SessionConfig lane_config = config;
    lane_config.emit_unevaluated = trace != nullptr;
    for (std::size_t k = 0; k < fleet.client_count(); ++k) {
      session.add_client(lane_config, registry.make_online(
                                          estimators[e], config.params,
                                          fleet.client(k).nominal_period()));
    }
    // Population summaries pool every lane; ADEV comes from client 0 alone
    // (a gap-aware ADEV over the interleaved-oscillator pool would be
    // meaningless). The trace sink sees every lane, rows tagged by the
    // client column.
    session.add_shared_sink(pool);
    session.add_sink(0, reference.sink());
    if (trace != nullptr) session.add_shared_sink(*trace);
    session.run_batched(fleet);

    ScenarioResult result = result_for(scenario, estimators[e]);
    const harness::SessionSummary summary = session.combined_summary();
    result.exchanges = summary.exchanges;
    result.lost = summary.lost;
    result.evaluated = summary.evaluated;
    result.polls = static_cast<std::size_t>(summary.polls_enumerated);
    result.skipped = result.polls - result.exchanges;
    result.final_status = summary.final_status;
    for (std::size_t k = 0; k < session.client_count(); ++k)
      result.steps += session.client(k).estimator().steps();

    result.clock_error = pool.clock_error();
    result.offset_error = pool.offset_error();
    const auto reference_reduction = reference.reduce();
    result.adev_short_tau = reference_reduction.adev_short_tau;
    result.adev_short = reference_reduction.adev_short;
    result.adev_long_tau = reference_reduction.adev_long_tau;
    result.adev_long = reference_reduction.adev_long;

    const harness::FleetReduction fleet_reduction = session.fleet_reduction();
    result.clients = fleet_reduction.clients;
    result.fleet_dispersion = fleet_reduction.dispersion;
    result.fleet_worst_p99 = fleet_reduction.worst_p99;
    result.fleet_pairwise_spread = fleet_reduction.pairwise_spread;
    results.push_back(std::move(result));
  }
  return results;
}

/// The imported-trace drive behind run_scenario_multi: no Testbed, no
/// randomness — the file IS the exchange stream, and every spec replays it
/// through the identical ReplaySession → LaneReducer path a sim-recorded
/// trace takes. The file is re-read here (cells are independent work units);
/// a read failure throws and the caller contains it as this cell's FAILED
/// rows. The reduction's tau0 and the estimator's window unit come from the
/// file header, not the grid — an imported trace carries its own polling
/// period.
std::vector<ScenarioResult> run_trace_scenario_multi(
    const SweepScenario& scenario,
    std::span<const harness::EstimatorSpec> estimators,
    std::span<harness::SampleSink* const> trace_sinks,
    bool streaming_reduction) {
  const harness::EstimatorRegistry& registry = harness::estimator_registry();
  for (const auto& spec : estimators) {
    if (!registry.is_replay(spec)) {
      throw std::runtime_error(
          "estimator '" + spec.label() +
          "' runs online and cannot score an imported trace cell — score "
          "--trace-in files with replay specs (e.g. offline)");
    }
  }
  const trace::ReadTrace loaded = trace::read_trace(scenario.trace_path);
  const harness::GroundTruthMode mode = loaded.meta.mode;

  harness::SessionConfig config;
  config.params = core::Params::for_poll_period(loaded.meta.poll_period);
  // No warm-up re-cut: the in_warmup flags ride the file (set by whoever
  // recorded or imported it), and ReplaySession scores exactly those.
  config.discard_warmup = 0;
  config.client_id = loaded.meta.client_id;

  std::vector<ScenarioResult> results;
  results.reserve(estimators.size());
  for (std::size_t e = 0; e < estimators.size(); ++e) {
    harness::SampleSink* trace_sink =
        trace_sinks.empty() ? nullptr : trace_sinks[e];
    LaneReducer reducer(loaded.meta.poll_period, streaming_reduction, mode);
    harness::SessionConfig lane_config = config;
    lane_config.emit_unevaluated = trace_sink != nullptr;
    harness::ReplaySession replay(
        lane_config, registry.make_replay(estimators[e], config.params,
                                          loaded.meta.nominal_period));
    replay.add_sink(reducer.sink());
    if (trace_sink != nullptr) replay.add_sink(*trace_sink);
    const harness::SessionSummary summary = replay.run(loaded.trace);

    ScenarioResult result = result_for(scenario, estimators[e]);
    result.from_trace = true;
    result.relative_only = mode == harness::GroundTruthMode::kRelativeOnly;
    result.exchanges = summary.exchanges;
    result.lost = summary.lost;
    result.evaluated = summary.evaluated;
    result.polls = static_cast<std::size_t>(summary.polls_enumerated);
    result.skipped = result.polls - result.exchanges;
    result.final_status = summary.final_status;
    const auto reduction = reducer.reduce();
    result.clock_error = reduction.clock_error;
    result.offset_error = reduction.offset_error;
    result.adev_short_tau = reduction.adev_short_tau;
    result.adev_short = reduction.adev_short;
    result.adev_long_tau = reduction.adev_long_tau;
    result.adev_long = reduction.adev_long;
    results.push_back(std::move(result));
  }
  return results;
}

}  // namespace

std::vector<ScenarioResult> run_scenario_multi(
    const SweepScenario& scenario,
    std::span<const harness::EstimatorSpec> estimators,
    Seconds discard_warmup, std::span<harness::SampleSink* const> trace_sinks,
    bool streaming_reduction, const std::string& trace_export_path) {
  TSC_EXPECTS(!estimators.empty());
  TSC_EXPECTS(trace_sinks.empty() || trace_sinks.size() == estimators.size());

  // Imported-trace cells replay their file; nothing below applies.
  if (scenario.is_trace()) {
    TSC_EXPECTS(trace_export_path.empty());
    return run_trace_scenario_multi(scenario, estimators, trace_sinks,
                                    streaming_reduction);
  }

  // Fleet cells take the multi-client drive (FleetTestbed + FleetSession);
  // everything below is the classic single-client path, which a single()
  // fleet spec must reproduce bit-for-bit — so it stays exactly as it was.
  if (!scenario.fleet.single()) {
    if (!trace_export_path.empty()) {
      throw std::runtime_error(
          "--trace-out cannot export a multi-client fleet cell: a trace "
          "file holds exactly one client's stream");
    }
    return run_fleet_scenario_multi(scenario, estimators, discard_warmup,
                                    trace_sinks, streaming_reduction);
  }

  // The drive loop is the shared harness layer — the same canonical
  // exchange-processing sequence the figure benches use — with one
  // ClockSession lane per online estimator spec fed the identical Testbed
  // stream; the registry builds each lane's estimator from its family and
  // resolved tunables. The sweep's one convention difference is declared in
  // the config: warm-up is cut on the observable tb_stamp rather than on
  // ground truth. Replay families cannot run online; the session records
  // the estimator-independent stream once and each replay lane is scored
  // post-hoc over it — same packets, same ground truth, same seeds, same
  // reduction.
  const harness::EstimatorRegistry& registry = harness::estimator_registry();
  sim::Testbed testbed(scenario.config);
  harness::SessionConfig config;
  config.params = core::Params::for_poll_period(scenario.config.poll_period);
  config.discard_warmup = discard_warmup;
  config.warmup_policy = harness::WarmupPolicy::kObservable;

  const bool any_replay =
      std::any_of(estimators.begin(), estimators.end(),
                  [&](const auto& spec) { return registry.is_replay(spec); });

  harness::MultiEstimatorSession session;
  // One recording serves both consumers: the replay lanes and the trace
  // export (a --trace-out file is the recorded stream, serialized).
  if (any_replay || !trace_export_path.empty())
    session.enable_trace_recording(config);
  constexpr std::size_t kReplayLane = static_cast<std::size_t>(-1);
  std::vector<std::size_t> lane_of(estimators.size(), kReplayLane);
  std::vector<LaneReducer> reducers;
  reducers.reserve(estimators.size());
  for (std::size_t e = 0; e < estimators.size(); ++e) {
    harness::SampleSink* trace =
        trace_sinks.empty() ? nullptr : trace_sinks[e];
    reducers.emplace_back(scenario.config.poll_period, streaming_reduction);
    if (registry.is_replay(estimators[e])) continue;
    // Trace dumps want gap-visible streams (lost and warm-up rows, flagged);
    // the reducer filters on `evaluated` either way.
    harness::SessionConfig lane_config = config;
    lane_config.emit_unevaluated = trace != nullptr;
    lane_of[e] = session.add_lane(
        lane_config, registry.make_online(estimators[e], config.params,
                                          testbed.nominal_period()));
    session.add_sink(lane_of[e], reducers.back().sink());
    if (trace != nullptr) session.add_sink(lane_of[e], *trace);
  }

  // Batched drive: reducer-only lanes take the record-free fast path; lanes
  // with a trace sink attached degrade to the scalar per-record sequence
  // inside process_batch, so dumps stay row-for-row identical.
  session.run_batched(testbed);

  if (!trace_export_path.empty()) {
    // Sim recordings carry the DAG reference; the exported file replays
    // byte-identical to the in-memory trace (the round-trip golden pins
    // this). A write failure throws and fails this scenario's cells.
    trace::TraceMeta meta;
    meta.mode = harness::GroundTruthMode::kReference;
    meta.nominal_period = testbed.nominal_period();
    meta.poll_period = scenario.config.poll_period;
    meta.client_id = config.client_id;
    meta.label = scenario.name;
    trace::write_trace(trace_export_path, meta, session.trace());
  }

  std::vector<ScenarioResult> results;
  results.reserve(estimators.size());
  for (std::size_t e = 0; e < estimators.size(); ++e) {
    ScenarioResult result = result_for(scenario, estimators[e]);
    harness::SessionSummary summary;
    if (lane_of[e] != kReplayLane) {
      summary = session.lane(lane_of[e]).summary();
      result.steps = session.lane(lane_of[e]).estimator().steps();
    } else {
      harness::SampleSink* trace =
          trace_sinks.empty() ? nullptr : trace_sinks[e];
      harness::SessionConfig lane_config = config;
      lane_config.emit_unevaluated = trace != nullptr;
      harness::ReplaySession replay(
          lane_config, registry.make_replay(estimators[e], config.params,
                                            testbed.nominal_period()));
      replay.add_sink(reducers[e].sink());
      if (trace != nullptr) replay.add_sink(*trace);
      summary = replay.run(session.trace());
      // Replay estimators never step (they have nothing to step).
    }
    result.exchanges = summary.exchanges;
    result.lost = summary.lost;
    result.evaluated = summary.evaluated;
    // The testbed owns the slot arithmetic; each lane records its counter
    // after the drain, keeping polls/skipped exact by construction.
    result.polls = static_cast<std::size_t>(summary.polls_enumerated);
    result.skipped = result.polls - result.exchanges;
    result.final_status = summary.final_status;

    const auto reduction = reducers[e].reduce();
    result.clock_error = reduction.clock_error;
    result.offset_error = reduction.offset_error;
    result.adev_short_tau = reduction.adev_short_tau;
    result.adev_short = reduction.adev_short;
    result.adev_long_tau = reduction.adev_long_tau;
    result.adev_long = reduction.adev_long;
    results.push_back(std::move(result));
  }
  return results;
}

ScenarioResult run_scenario(const SweepScenario& scenario,
                            Seconds discard_warmup,
                            harness::SampleSink* trace_sink) {
  const harness::EstimatorSpec specs[] = {
      harness::EstimatorSpec{"robust", {}}};
  harness::SampleSink* const sinks[] = {trace_sink};
  auto results = run_scenario_multi(
      scenario, specs, discard_warmup,
      trace_sink != nullptr ? std::span<harness::SampleSink* const>(sinks)
                            : std::span<harness::SampleSink* const>());
  return std::move(results.front());
}

namespace {

ScenarioResult failed_result(const SweepScenario& scenario,
                             const harness::EstimatorSpec& estimator,
                             std::string error) {
  ScenarioResult result = result_for(scenario, estimator);
  result.failed = true;
  result.error = std::move(error);
  return result;
}

}  // namespace

ScenarioSweep::ScenarioSweep(GridSpec grid)
    : grid_(std::move(grid)), scenarios_(expand_grid(grid_)) {}

std::vector<ScenarioResult> ScenarioSweep::run(
    const SweepOptions& options) const {
  // One result row per (owned scenario, estimator spec), scenario-major.
  // The shard slice partitions by *scenario* — the estimator fan-out of a
  // scenario shares one Testbed drain (and a replay lane its recording), so
  // a scenario is the indivisible work unit.
  const std::vector<harness::EstimatorSpec>& estimators = grid_.estimators;
  const std::size_t lanes = estimators.size();
  const ShardSpec shard = options.shard;
  const std::vector<std::size_t> owned =
      shard_scenarios(scenarios_.size(), shard);
  std::vector<ScenarioResult> results(owned.size() * lanes);

  csv_error_.clear();
  checkpoint_error_.clear();
  dump_error_.clear();
  const bool dump_csv = !options.csv_path.empty();

  // --trace-out exports THE scenario's recorded stream: with several
  // scenarios (or a fleet, or an imported trace as the source) the file's
  // contents would be ambiguous or impossible, so anything but the
  // single-plain-scenario shape is a usage error, before any work runs.
  if (!options.trace_out.empty()) {
    if (scenarios_.size() != 1) {
      throw SweepUsageError(strfmt(
          "--trace-out exports exactly one scenario's stream, but this grid "
          "expands to %zu scenarios — narrow the axes to a single cell",
          scenarios_.size()));
    }
    if (scenarios_.front().is_trace()) {
      throw SweepUsageError(
          "--trace-out cannot re-export a --trace-in file (it already is a "
          "trace; use tools/trace-import to canonicalize)");
    }
    if (!scenarios_.front().fleet.single()) {
      throw SweepUsageError(
          "--trace-out cannot export a multi-client fleet cell: a trace "
          "file holds exactly one client's stream");
    }
  }

  std::vector<std::string> labels;
  labels.reserve(lanes);
  for (const auto& spec : estimators) labels.push_back(spec.label());
  const std::uint64_t run_hash = sweep_run_hash(
      grid_, options.discard_warmup, options.streaming_reduction);

  // Shard result dump: the header is written (fail fast on an unwritable
  // path) before any scenario runs; the cells complete the file at the end.
  std::optional<ShardDumpWriter> dump;
  if (!options.dump_path.empty()) {
    ShardDumpHeader header;
    header.run_hash = run_hash;
    header.shard = shard;
    header.scenario_total = scenarios_.size();
    header.duration = grid_.duration;
    header.master_seed = grid_.master_seed;
    header.estimator_labels = labels;
    dump.emplace(options.dump_path, header, results.size());
  }

  // Checkpoint: an existing file resumes (its committed scenario prefix is
  // loaded into the result slots and skipped below; a torn tail is
  // truncated away), a missing one starts fresh. Incompatible checkpoints
  // throw SweepUsageError here, before any scenario runs.
  std::size_t committed = 0;
  std::uint64_t csv_resume_bytes = 0;
  std::optional<CheckpointWriter> checkpoint;
  if (!options.checkpoint_path.empty()) {
    CheckpointHeader header;
    header.run_hash = run_hash;
    header.shard = shard;
    header.with_csv = dump_csv;
    if (std::filesystem::exists(options.checkpoint_path)) {
      CheckpointLoad load =
          load_checkpoint(options.checkpoint_path, header, scenarios_, labels);
      committed = load.committed_scenarios;
      csv_resume_bytes = load.csv_bytes;
      TSC_ENSURES(load.results.size() == committed * lanes);
      for (std::size_t k = 0; k < load.results.size(); ++k)
        results[k] = std::move(load.results[k]);
      checkpoint.emplace(options.checkpoint_path, load.valid_bytes);
    } else {
      checkpoint.emplace(options.checkpoint_path, header);
    }
  }

  // Trace dumping buffers each remaining (scenario, estimator) cell's
  // records in its own collector (the workers must not share a file writer)
  // and serializes them to the CSV in grid order, so the dump is
  // deterministic like the rest of the reduction. The sink is opened before
  // any work runs — an unwritable path must fail fast, not after a long
  // sweep has completed. On a resume with committed scenarios, the file is
  // truncated to the last committed watermark (dropping rows of the
  // scenario that was in flight when the run died) and appended to — the
  // committed prefix is kept byte-for-byte.
  std::optional<harness::CsvTraceSink> csv;
  if (dump_csv) {
    if (committed > 0) {
      std::error_code ec;
      const auto size =
          std::filesystem::file_size(options.csv_path, ec);
      if (ec || size < csv_resume_bytes) {
        throw SweepUsageError(
            "checkpoint " + options.checkpoint_path + " commits " +
            std::to_string(csv_resume_bytes) + " trace-CSV bytes but " +
            options.csv_path +
            (ec ? " is missing" : " is shorter than that") +
            " — restore the matching trace file or delete the checkpoint");
      }
      std::filesystem::resize_file(options.csv_path, csv_resume_bytes);
      csv.emplace(options.csv_path, harness::CsvTraceSink::Append{});
    } else {
      csv.emplace(options.csv_path);
    }
  }

  const std::size_t remaining = owned.size() - committed;
  std::vector<std::unique_ptr<harness::CollectorSink>> collectors;
  if (dump_csv) {
    collectors.resize(remaining * lanes);
    for (auto& c : collectors) c = std::make_unique<harness::CollectorSink>();
  }

  // The commit pipeline: workers finish scenarios in pool order, one
  // drainer at a time commits them in grid order — first the scenario's
  // trace rows, then its checkpoint record carrying the post-row CSV byte
  // watermark. The file I/O happens outside the lock, so other finishing
  // workers only ever take the mutex to mark completion (never stalling
  // behind a write); scenarios completed while the drainer was writing are
  // picked up when it re-checks under the lock.
  std::mutex commit_mutex;
  std::vector<char> scenario_ready(remaining, 0);
  std::size_t next_to_commit = 0;
  bool draining = false;
  const bool need_drainer = dump_csv || checkpoint.has_value();

  if (remaining > 0) {
    // No point spawning more workers than there are scenarios left.
    ThreadPool pool(std::min(
        ThreadPool::resolve_thread_count(options.threads), remaining));
    const Seconds warmup = options.discard_warmup;
    parallel_for(pool, remaining, [&](std::size_t j) {
      const std::size_t slot = committed + j;
      const SweepScenario& scenario = scenarios_[owned[slot]];
      // Contain failures to their grid cells: one throwing scenario must
      // not discard the rest of a long sweep.
      try {
        std::vector<harness::SampleSink*> trace_sinks;
        if (dump_csv) {
          trace_sinks.reserve(lanes);
          for (std::size_t e = 0; e < lanes; ++e)
            trace_sinks.push_back(collectors[j * lanes + e].get());
        }
        auto cell_results = run_scenario_multi(scenario, estimators, warmup,
                                               trace_sinks,
                                               options.streaming_reduction,
                                               options.trace_out);
        for (std::size_t e = 0; e < lanes; ++e)
          results[slot * lanes + e] = std::move(cell_results[e]);
      } catch (const std::exception& e) {
        for (std::size_t k = 0; k < lanes; ++k)
          results[slot * lanes + k] =
              failed_result(scenario, estimators[k], e.what());
      } catch (...) {
        for (std::size_t k = 0; k < lanes; ++k)
          results[slot * lanes + k] =
              failed_result(scenario, estimators[k], "unknown exception");
      }
      if (!need_drainer) return;
      std::unique_lock<std::mutex> lock(commit_mutex);
      scenario_ready[j] = 1;
      if (draining) return;
      draining = true;
      while (next_to_commit < remaining && scenario_ready[next_to_commit]) {
        const std::size_t ready = next_to_commit;
        const std::size_t ready_slot = committed + ready;
        std::vector<std::unique_ptr<harness::CollectorSink>> buffers;
        if (dump_csv) {
          buffers.reserve(lanes);
          for (std::size_t e = 0; e < lanes; ++e)
            buffers.push_back(std::move(collectors[ready * lanes + e]));
        }
        ++next_to_commit;
        lock.unlock();
        // A FAILED cell's buffer holds a silently truncated trace — drop
        // it (its absence from the dump mirrors the FAILED row in the
        // report). A mid-run write failure (disk full) aborts the dump but
        // not the sweep: buffers still drain (bounded memory) and the
        // error is reported via csv_error() alongside the intact results.
        if (csv) {
          try {
            for (std::size_t e = 0; e < lanes; ++e) {
              const ScenarioResult& cell = results[ready_slot * lanes + e];
              if (cell.failed) continue;
              csv->set_scenario(cell.name);
              csv->set_estimator(labels[e]);
              for (const auto& record : buffers[e]->records())
                csv->on_sample(record);
            }
          } catch (const std::exception& e) {
            csv_error_ = e.what();
            csv.reset();
            // Later checkpoint records would carry watermarks into a file
            // that stopped growing; a resume would then silently lose the
            // missing rows. Suspend checkpointing too — the committed
            // prefix stays valid and a resume recomputes the rest.
            if (checkpoint) {
              checkpoint_error_ =
                  "suspended after the trace CSV dump failed: " + csv_error_;
              checkpoint.reset();
            }
          }
        }
        if (checkpoint) {
          try {
            checkpoint->record_scenario(
                std::span<const ScenarioResult>(&results[ready_slot * lanes],
                                                lanes),
                owned[ready_slot], csv ? csv->byte_offset() : 0);
          } catch (const std::exception& e) {
            // Same containment as the CSV: keep the sweep's results, stop
            // extending the checkpoint, report via checkpoint_error().
            checkpoint_error_ = e.what();
            checkpoint.reset();
          }
        }
        lock.lock();
      }
      draining = false;
    });
  }
  if (csv) {
    try {
      csv->close();  // surface a failed final flush, not just failed writes
    } catch (const std::exception& e) {
      csv_error_ = e.what();
    }
  }
  if (checkpoint) {
    try {
      checkpoint->close();
    } catch (const std::exception& e) {
      checkpoint_error_ = e.what();
    }
  }
  if (dump) {
    try {
      dump->write_cells(results);
    } catch (const std::exception& e) {
      dump_error_ = e.what();
    }
  }
  return results;
}

namespace {

/// Medians-of-medians aggregate for one group key (server kind or
/// environment).
struct GroupAggregate {
  std::vector<double> medians;       ///< per-scenario |median| clock error
  std::vector<double> tails;         ///< per-scenario worst |tail| clock error
  std::size_t scenarios = 0;
  std::size_t evaluated = 0;
  std::size_t lost = 0;
};

void add_to_group(GroupAggregate& group, const ScenarioResult& r) {
  ++group.scenarios;
  group.evaluated += r.evaluated;
  group.lost += r.lost;
  // A scenario with no evaluable points has no error summary; counting its
  // zero-initialized percentiles would misread total data loss as perfect
  // synchronization.
  if (r.evaluated == 0) return;
  group.medians.push_back(std::fabs(r.clock_error.percentiles.p50));
  // The error distributions are negatively biased (asymmetric forward
  // paths), so the worst tail can sit at either percentile extreme.
  group.tails.push_back(std::max(std::fabs(r.clock_error.percentiles.p01),
                                 std::fabs(r.clock_error.percentiles.p99)));
}

void print_group_table(std::ostream& os, const std::string& axis,
                       const std::map<std::string, GroupAggregate>& groups) {
  TablePrinter table({axis, "scenarios", "evaluated", "lost",
                      "median |err| [us]", "worst |tail| [us]"});
  for (const auto& [key, group] : groups) {
    const bool has_data = !group.medians.empty();
    table.add_row(
        {key, format_count(group.scenarios), format_count(group.evaluated),
         format_count(group.lost),
         has_data ? strfmt("%.1f", percentile(group.medians, 0.5) * 1e6)
                  : std::string("n/a"),
         has_data ? strfmt("%.1f", *std::max_element(group.tails.begin(),
                                                     group.tails.end()) *
                                       1e6)
                  : std::string("n/a")});
  }
  table.print(os);
}

}  // namespace

void print_sweep_report(std::ostream& os,
                        const std::vector<ScenarioResult>& results) {
  // Distinct estimator labels, in order of first appearance (= grid axis
  // order). The canonical label is the spec's identity, so parameterized
  // variants of one family group as separate lanes.
  std::vector<std::string> estimators;
  for (const auto& r : results) {
    const std::string label = r.estimator.label();
    if (std::find(estimators.begin(), estimators.end(), label) ==
        estimators.end()) {
      estimators.push_back(label);
    }
  }
  // Relative-only cells surface their tracking percentiles only in the
  // comparison table (the summary's absolute columns are structurally n/a
  // for them), so any such cell forces the table even single-estimator.
  const bool any_relative =
      std::any_of(results.begin(), results.end(),
                  [](const ScenarioResult& r) { return r.relative_only; });
  const bool multi = estimators.size() > 1 || any_relative;

  print_banner(os, "Per-scenario summary");
  TablePrinter table({"scenario", "estimator", "polls", "skip", "lost",
                      "eval", "sw", "steps", "median [us]", "p99 [us]",
                      "ADEV(short)", "ADEV(long)"});
  for (const auto& r : results) {
    const std::string estimator = r.estimator.label();
    if (r.failed) {
      table.add_row({r.name, estimator, "FAILED", "-", "-", "-", "-", "-",
                     "-", "-", "-", "-"});
      continue;
    }
    // No points in the clock-error series → no absolute statistics; zeros
    // here would be indistinguishable from a perfect run. Relative-only
    // trace cells land here by construction (count 0): their absolute
    // columns are structurally n/a while eval/ADEV stay populated.
    const bool has_data = r.clock_error.count > 0;
    table.add_row({r.name, estimator, format_count(r.polls),
                   format_count(r.skipped),
                   format_count(r.lost), format_count(r.evaluated),
                   format_count(r.final_status.server_changes),
                   format_count(r.steps),
                   has_data ? strfmt("%.1f", r.clock_error.percentiles.p50 * 1e6)
                            : std::string("n/a"),
                   has_data ? strfmt("%.1f", r.clock_error.percentiles.p99 * 1e6)
                            : std::string("n/a"),
                   r.adev_short > 0 ? strfmt("%.3f PPM", to_ppm(r.adev_short))
                                    : std::string("n/a"),
                   r.adev_long > 0 ? strfmt("%.3f PPM", to_ppm(r.adev_long))
                                   : std::string("n/a")});
  }
  table.print(os);
  for (const auto& r : results) {
    if (r.failed) {
      os << "FAILED " << r.name << " [" << r.estimator.label()
         << "]: " << r.error << "\n";
    }
  }

  if (multi) {
    // Per-cell head-to-head: every estimator's clock-error percentiles on
    // the identical seed/exchange stream, rendered by the same
    // percentile_row_us the figure benches use.
    print_banner(os, "Estimator comparison (identical seeds per scenario)");
    auto headers = percentile_headers("scenario / estimator");
    headers.push_back("steps");
    TablePrinter comparison(headers);
    for (const auto& r : results) {
      std::string label = r.name + " / " + r.estimator.label();
      // Relative-only rows have no absolute percentiles; their tracking
      // residual rides the same columns, marked so the two error kinds are
      // never silently compared across rows.
      const SeriesSummary& series =
          r.relative_only ? r.offset_error : r.clock_error;
      if (r.failed || series.count == 0) {
        comparison.add_row({label, "-", "-", "-", "-", "-", "-",
                            r.failed ? "FAILED" : "n/a"});
        continue;
      }
      if (r.relative_only) label += " (rel)";
      auto row = percentile_row_us(label, series.percentiles);
      row.push_back(format_count(r.steps));
      comparison.add_row(std::move(row));
    }
    comparison.print(os);
  }

  // Fleet cells get their population metrics alongside the pooled summary
  // rows above: how tightly the fleet agrees (dispersion, pairwise spread)
  // and how bad its worst client's tail is.
  if (std::any_of(results.begin(), results.end(),
                  [](const ScenarioResult& r) { return r.clients > 1; })) {
    print_banner(os, "Fleet metrics (multi-client cells)");
    TablePrinter fleet_table({"scenario", "estimator", "clients", "eval",
                              "dispersion [us]", "worst p99 [us]",
                              "spread [us]"});
    for (const auto& r : results) {
      if (r.failed || r.clients <= 1) continue;
      const bool has_data = r.evaluated > 0;
      fleet_table.add_row(
          {r.name, r.estimator.label(), format_count(r.clients),
           format_count(r.evaluated),
           has_data ? strfmt("%.2f", r.fleet_dispersion * 1e6)
                    : std::string("n/a"),
           has_data ? strfmt("%.1f", r.fleet_worst_p99 * 1e6)
                    : std::string("n/a"),
           has_data ? strfmt("%.2f", r.fleet_pairwise_spread * 1e6)
                    : std::string("n/a")});
    }
    fleet_table.print(os);
  }

  // Aggregates stay per estimator: mixing algorithms in one group would
  // average incomparable error regimes.
  std::map<std::string, GroupAggregate> by_server;
  std::map<std::string, GroupAggregate> by_environment;
  for (const auto& r : results) {
    // Imported-trace cells carry placeholder grid coordinates (a file has
    // no server/environment axis) and would silently skew the aggregates.
    if (r.failed || r.from_trace) continue;
    const std::string suffix =
        multi ? " / " + r.estimator.label() : std::string();
    add_to_group(by_server[sim::to_string(r.server) + suffix], r);
    add_to_group(by_environment[sim::to_string(r.environment) + suffix], r);
  }

  print_banner(os, "Aggregate by server");
  print_group_table(os, "server", by_server);
  print_banner(os, "Aggregate by environment");
  print_group_table(os, "environment", by_environment);
}

}  // namespace tscclock::sweep
