// ScenarioSweep: play many Testbed + TscNtpClock pipelines in parallel and
// reduce them into aggregate error/ADEV summary tables.
//
// Determinism contract: results are bit-identical for a fixed GridSpec
// regardless of thread count. Each scenario runs on its own Testbed seeded
// purely from the scenario identity (see scenario_grid.hpp), writes into its
// own pre-allocated result slot, and the reduction happens single-threaded
// in grid order after the pool drains — the work-stealing schedule can never
// leak into the output.
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "core/clock.hpp"
#include "harness/estimator_spec.hpp"
#include "harness/session.hpp"
#include "sweep/scenario_grid.hpp"
#include "sweep/shard.hpp"

namespace tscclock::sweep {

/// Reduced outcome of one (scenario, estimator) cell (everything
/// deterministic; no wall-clock quantities, so results can be compared
/// bit-for-bit in tests).
struct ScenarioResult {
  std::size_t scenario_index = 0;
  std::string name;
  std::uint64_t seed = 0;
  // Grid coordinates, carried so reporting never has to re-parse `name`.
  sim::ServerKind server = sim::ServerKind::kInt;
  sim::Environment environment = sim::Environment::kMachineRoom;
  /// Which estimator spec scored this row (family + non-default tunables;
  /// estimator.label() is the reporting/CSV identity). Every spec of a
  /// scenario shares the scenario's seed — the axis never reseeds the trace.
  harness::EstimatorSpec estimator{"robust", {}};

  /// Set when the scenario's run threw instead of completing; the rest of
  /// the sweep still finishes, and `error` holds the exception text.
  bool failed = false;
  std::string error;

  std::size_t polls = 0;       ///< poll slots in the configured duration
  std::size_t skipped = 0;     ///< polls suppressed by scheduled outages
  std::size_t exchanges = 0;   ///< generated exchanges (incl. lost)
  std::size_t lost = 0;        ///< exchanges lost in transit
  /// Non-lost exchanges with a DAG reference that also survived the
  /// warm-up discard (the error summaries are computed over exactly these).
  std::size_t evaluated = 0;

  /// Absolute clock error Ca(Tf_i) − Tg_i against the DAG monitor [s],
  /// post warm-up discard.
  SeriesSummary clock_error;
  /// Offset tracking error θ̂(t_i) − θg_i [s], post warm-up discard.
  SeriesSummary offset_error;

  /// Allan deviation of the absolute clock error at two scales
  /// (16 and 256 polling periods), computed over the longest outage-free
  /// stretch of the trace; 0 is the not-computable sentinel (stretch too
  /// short for the scale), rendered as "n/a" in reports.
  double adev_short_tau = 0;
  double adev_short = 0;
  double adev_long_tau = 0;
  double adev_long = 0;

  /// Clock resets performed by the estimator (the SW-NTP failure mode the
  /// paper's comparison centres on; 0 for step-free algorithms).
  std::uint64_t steps = 0;

  core::ClockStatus final_status;

  // -- Fleet cells (clients > 1) ------------------------------------------
  /// Fleet size of the cell (1 for classic single-client cells). For fleet
  /// cells the counters above are population totals, clock/offset summaries
  /// pool every client's evaluated samples (deterministic merge order), and
  /// the ADEV columns are computed over client 0 — the reference client —
  /// since the pooled stream interleaves unrelated oscillators.
  std::size_t clients = 1;
  /// Population offset dispersion: stddev across clients of the per-client
  /// median clock error (harness::FleetReduction).
  double fleet_dispersion = 0;
  /// Max over clients of max(|p01|, |p99|) of the client's clock error.
  double fleet_worst_p99 = 0;
  /// Max − min across clients of the per-client median clock error.
  double fleet_pairwise_spread = 0;

  // -- Imported-trace cells (scenario.is_trace()) ---------------------------
  /// The cell replayed an imported trace file instead of driving a Testbed.
  /// Aggregate tables (by-server / by-environment) skip these: their
  /// server/environment coordinates are placeholders, not grid axes.
  bool from_trace = false;
  /// The trace declared ground_truth relative (no reference clock): the
  /// clock-error summary is structurally empty (count 0 → n/a columns) and
  /// the offset/ADEV columns grade tracking against the server's own clock
  /// (see harness::GroundTruthMode).
  bool relative_only = false;
};

struct SweepOptions {
  std::size_t threads = 0;  ///< 0 = hardware_concurrency
  /// Points earlier than this (by server receive time) are excluded from the
  /// error summaries, matching the paper's post-warm-up analyses.
  Seconds discard_warmup = duration::kHour;
  /// Reduce each cell with the O(1)-memory StreamingReducerSink instead of
  /// the exact buffered ReducerSink: same counts/means/ADEV bit-for-bit,
  /// P²-approximated percentiles. For grids × durations too large to buffer
  /// every evaluated exchange. Default off — the determinism tests pin the
  /// exact reduction.
  bool streaming_reduction = false;
  /// When non-empty, every scenario's per-exchange trace (including lost and
  /// warm-up records, flagged) is dumped to this CSV file in grid order via
  /// harness::CsvTraceSink — with multiple estimators, grouped by scenario
  /// then estimator, labelled by the scenario/estimator columns. FAILED
  /// cells contribute no rows (their buffer is a silently truncated trace);
  /// see ScenarioSweep::csv_error() for mid-run dump failures.
  std::string csv_path;
  /// Which slice of the expanded grid this invocation runs (default: the
  /// whole grid). Partition is by scenario, round-robin on grid index; see
  /// sweep/shard.hpp for the determinism contract that makes an N-way
  /// split merge back into the exact single-process tables.
  ShardSpec shard;
  /// When non-empty, an append-only per-scenario checkpoint: each committed
  /// scenario's full results (every estimator lane, FAILED cells included)
  /// are appended in grid order as it completes, so an interrupted shard
  /// resumes by skipping the committed prefix — final tables, result dump
  /// and --csv trace are bit-identical to an uninterrupted run. A torn
  /// trailing record (kill mid-write) is detected and recomputed; a
  /// checkpoint from an incompatible invocation (different grid, options or
  /// shard) is refused with a precise error. See sweep/result_io.hpp.
  std::string checkpoint_path;
  /// When non-empty, the run's results are written to this file as a
  /// versioned machine-readable shard dump (full ScenarioResult fidelity,
  /// n/a and FAILED cells included) for tools/sweep-merge. The file is
  /// created before any scenario runs (unwritable paths fail fast); see
  /// ScenarioSweep::dump_error() for end-of-run write failures.
  std::string dump_path;
  /// When non-empty, export the run's recorded exchange stream as a
  /// reference-bearing trace file (trace/trace_io.hpp) replayable via
  /// --trace-in. Restricted to a single-scenario, single-client grid with
  /// no trace inputs — a trace file holds exactly one client's stream —
  /// and refused (SweepUsageError) otherwise. Export failures fail the
  /// scenario's cells, not the process.
  std::string trace_out;
};

/// Run one scenario synchronously through the shared drive layer with the
/// default robust estimator (harness::ClockSession, observable warm-up
/// cut). `trace_sink`, when given, additionally receives every record —
/// including unevaluated ones — for trace dumping. Equivalent to
/// run_scenario_multi with {kRobust}.
ScenarioResult run_scenario(const SweepScenario& scenario,
                            Seconds discard_warmup,
                            harness::SampleSink* trace_sink = nullptr);

/// Run one scenario's exchange stream through every estimator spec at once
/// (the unit the pool executes): one Testbed drain fanned into N
/// harness::ClockSession lanes via MultiEstimatorSession, so all specs —
/// families and their parameterized variants alike — score identical
/// packets from the scenario's one seed. Replay families (e.g. the §5.3
/// offline smoother) are scored post-hoc over the drain's recorded trace
/// through the identical reduction — same packets, ground truth and seed as
/// the online lanes. Returns one result per spec, in `estimators` order.
/// `trace_sinks`, when non-empty, must hold one sink per spec (entries may
/// be null). A non-single() scenario.fleet switches the drive to
/// FleetTestbed + harness::FleetSession (per spec: regenerated fleet, one
/// lane per client, pooled summaries, client-0 ADEV, fleet_* metrics);
/// replay specs throw std::runtime_error there — a fleet trace mixes
/// clients, which ReplaySession refuses.
/// An is_trace() scenario replays its file through the replay lanes instead
/// of driving a Testbed (every spec must be a replay family there — the CLI
/// guarantees it). `trace_export_path`, when non-empty, additionally writes
/// the drain's recorded trace as a reference-bearing trace file.
std::vector<ScenarioResult> run_scenario_multi(
    const SweepScenario& scenario,
    std::span<const harness::EstimatorSpec> estimators,
    Seconds discard_warmup,
    std::span<harness::SampleSink* const> trace_sinks = {},
    bool streaming_reduction = false,
    const std::string& trace_export_path = {});

class ScenarioSweep {
 public:
  explicit ScenarioSweep(GridSpec grid);

  [[nodiscard]] const GridSpec& grid() const { return grid_; }
  [[nodiscard]] const std::vector<SweepScenario>& scenarios() const {
    return scenarios_;
  }

  /// Expand, fan out over a work-stealing pool, and return per-cell results
  /// in grid order: scenario-major, the grid's estimators minor, i.e.
  /// results[i * estimators.size() + e]. With a non-default options.shard,
  /// only the shard's scenarios run and the results cover exactly those, in
  /// the same scenario-major order. An unwritable `csv_path`, `dump_path`
  /// or `checkpoint_path` — and a checkpoint incompatible with this
  /// invocation — throws before any scenario runs (fail fast); a *mid-run*
  /// artifact write failure (disk full) must not discard hours of computed
  /// results, so it aborts only that artifact and is reported via
  /// csv_error() / checkpoint_error() / dump_error() instead.
  [[nodiscard]] std::vector<ScenarioResult> run(
      const SweepOptions& options = {}) const;

  /// Empty, or the reason the last run's CSV trace dump was aborted (the
  /// dumped file is incomplete and should be discarded).
  [[nodiscard]] const std::string& csv_error() const { return csv_error_; }

  /// Empty, or the reason checkpointing was suspended mid-run (the
  /// checkpoint keeps its valid committed prefix — a resume recomputes the
  /// rest — but this run stopped extending it).
  [[nodiscard]] const std::string& checkpoint_error() const {
    return checkpoint_error_;
  }

  /// Empty, or the reason the shard result dump could not be completed (the
  /// dump file is unusable for sweep-merge and should be discarded).
  [[nodiscard]] const std::string& dump_error() const { return dump_error_; }

 private:
  GridSpec grid_;
  std::vector<SweepScenario> scenarios_;
  mutable std::string csv_error_;         ///< set by run(), see csv_error()
  mutable std::string checkpoint_error_;  ///< set by run()
  mutable std::string dump_error_;        ///< set by run()
};

/// Print the per-scenario summary table plus aggregates grouped by server
/// and by environment: the median of the per-scenario |median| errors and
/// the worst |tail| — max over scenarios of max(|p01|, |p99|), since the
/// negatively-biased error distributions can put the worst tail at either
/// extreme.
void print_sweep_report(std::ostream& os,
                        const std::vector<ScenarioResult>& results);

}  // namespace tscclock::sweep
