// Deterministic grid sharding for fleet-scale sweeps.
//
// `sweep --shard i/N` runs the i-th of N disjoint slices of the expanded
// scenario grid. The partition is by *scenario* (round-robin on the
// scenario's grid index), never by (scenario, estimator) cell: a scenario is
// the sweep's unit of work — all estimator lanes, including replay lanes
// scored over the scenario's recorded trace, share one Testbed drain — so
// cutting through a scenario would force two shards to regenerate the same
// exchange stream and would strand a replay lane away from its recording.
//
// Determinism contract: shard membership depends only on the scenario's
// position in the expanded grid and on N. Together with the identity-derived
// per-scenario seeds and the grid-order reduction, this makes the union of
// the N shard runs carry exactly the information of the single-process
// sweep — tools/sweep-merge reassembles the identical tables byte-for-byte
// (pinned by golden tests).
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace tscclock::sweep {

/// A sweep invocation that cannot be what the user meant (malformed --shard
/// shape, checkpoint/invocation mismatch). tools/sweep prints the message
/// verbatim and exits 2, like every other usage error.
class SweepUsageError : public std::runtime_error {
 public:
  explicit SweepUsageError(const std::string& what)
      : std::runtime_error(what) {}
};

/// One slice of an N-way grid partition. Indices are 1-based — "--shard
/// 1/3" is the first of three shards, like "part 1 of 3" — and the default
/// 1/1 is the whole grid (the unsharded sweep is the one-shard special
/// case, not a separate code path).
struct ShardSpec {
  std::size_t index = 1;  ///< 1-based shard index, in [1, count]
  std::size_t count = 1;  ///< total number of shards, >= 1

  [[nodiscard]] bool whole() const { return count == 1; }

  /// Round-robin ownership: scenario `scenario_index` (0-based grid
  /// position) belongs to this shard iff index-1 == scenario_index mod
  /// count. Round-robin (rather than contiguous blocks) spreads any
  /// cost-vs-position correlation of the grid axes evenly across the fleet.
  [[nodiscard]] bool owns(std::size_t scenario_index) const {
    return scenario_index % count == index - 1;
  }

  /// "i/N", the canonical CLI / header spelling.
  [[nodiscard]] std::string label() const;

  bool operator==(const ShardSpec&) const = default;
};

/// Parse "i/N" (digits, one slash, 1 <= i <= N). Throws SweepUsageError
/// with a usage-pointing message on every malformed shape: "0/3" (indices
/// are 1-based), "4/3" (index beyond count), "1/0" (no shards), "x/y"
/// (not numbers), "13" (missing slash), "1/3/5", whitespace, empty.
ShardSpec parse_shard(std::string_view text);

/// The 0-based grid indices owned by `shard` out of `total` scenarios, in
/// increasing order. Empty when the grid is smaller than the fleet and this
/// shard drew no work (still a valid shard: its dump merges as zero cells).
std::vector<std::size_t> shard_scenarios(std::size_t total,
                                         const ShardSpec& shard);

}  // namespace tscclock::sweep
