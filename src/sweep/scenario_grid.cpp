#include "sweep/scenario_grid.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "common/contracts.hpp"
#include "common/serialize.hpp"
#include "common/table.hpp"

namespace tscclock::sweep {

namespace {

/// splitmix64 finalizer: spreads related inputs (master ^ hash) across the
/// full 64-bit space so mt19937_64 seeds are well decorrelated.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

std::string scenario_name(sim::ServerKind server, sim::Environment environment,
                          Seconds poll_period, const std::string& schedule) {
  return sim::to_string(server) + "/" + sim::to_string(environment) + "/" +
         strfmt("poll%g", poll_period) + "/" + schedule;
}

std::uint64_t scenario_seed(std::uint64_t master_seed,
                            const std::string& identity) {
  return splitmix64(master_seed ^ fnv1a64(identity));
}

std::vector<SweepScenario> expand_grid(const GridSpec& grid) {
  TSC_EXPECTS(!grid.servers.empty());
  TSC_EXPECTS(!grid.environments.empty());
  TSC_EXPECTS(!grid.poll_periods.empty());
  TSC_EXPECTS(!grid.schedules.empty());
  TSC_EXPECTS(grid.duration > 0.0);
  for (const auto poll : grid.poll_periods) TSC_EXPECTS(poll >= kMinPollPeriod);
  // The estimator axis is not part of the expansion (it never touches the
  // seeds), but a sweep with no or duplicate estimators is still a grid
  // misconfiguration — reject it where every other axis is validated.
  // Identity is the canonical label, so `robust` and `robust()` collide.
  TSC_EXPECTS(!grid.estimators.empty());
  {
    std::set<std::string> unique_estimators;
    for (const auto& spec : grid.estimators)
      unique_estimators.insert(spec.label());
    TSC_EXPECTS(unique_estimators.size() == grid.estimators.size());
  }

  std::vector<SweepScenario> scenarios;
  scenarios.reserve(grid.size());
  std::set<std::string> seen_names;
  for (const auto server : grid.servers) {
    for (const auto environment : grid.environments) {
      for (const auto poll : grid.poll_periods) {
        for (const auto& schedule : grid.schedules) {
          SweepScenario scenario;
          scenario.index = scenarios.size();
          scenario.name =
              scenario_name(server, environment, poll, schedule.name);
          // Identity = name = seed derivation input: a duplicate axis value
          // (or two schedules sharing a name) would silently collapse two
          // cells onto one RNG stream.
          TSC_EXPECTS(seen_names.insert(scenario.name).second);

          sim::ScenarioConfig& config = scenario.config;
          config.server = server;
          config.environment = environment;
          config.poll_period = poll;
          // Poll jitter must stay strictly inside half the poll period
          // (Testbed contract); clamp for short poll periods.
          config.poll_jitter = std::min(grid.poll_jitter, poll / 4);
          config.duration = grid.duration;
          config.use_wire_format = grid.use_wire_format;
          config.check_wire = grid.check_wire;
          config.events = schedule.events;
          config.server_switches = schedule.server_switches;
          config.seed = scenario_seed(grid.master_seed, scenario.name);

          scenarios.push_back(std::move(scenario));
        }
      }
    }
  }
  return scenarios;
}

std::string grid_descriptor(const GridSpec& grid) {
  // Every field below can change a result cell; nothing else in GridSpec
  // can. Doubles are rendered in exact hexfloat so two descriptors are
  // equal iff the grids are value-identical (no %g collision window).
  std::ostringstream out;
  out << "tscclock-grid v1\n";
  out << "servers";
  for (const auto server : grid.servers) out << ' ' << sim::to_string(server);
  out << "\nenvironments";
  for (const auto environment : grid.environments) {
    out << ' ' << sim::to_string(environment);
  }
  out << "\npolls";
  for (const auto poll : grid.poll_periods) {
    out << ' ' << format_double_exact(poll);
  }
  out << '\n';
  for (const auto& schedule : grid.schedules) {
    // Schedules carry structure, not just a name: two invocations may both
    // say "outage" yet place the gap differently (the CLI derives event
    // times from the duration). Serialize the contents.
    out << "schedule " << escape_field(schedule.name);
    for (const auto& o : schedule.events.outages()) {
      out << " outage " << format_double_exact(o.start) << ' '
          << format_double_exact(o.end);
    }
    for (const auto& f : schedule.events.server_faults()) {
      out << " fault " << format_double_exact(f.start) << ' '
          << format_double_exact(f.end) << ' '
          << format_double_exact(f.offset);
    }
    for (const auto& s : schedule.events.level_shifts()) {
      out << " shift " << format_double_exact(s.start) << ' '
          << format_double_exact(s.end) << ' '
          << format_double_exact(s.forward_delta) << ' '
          << format_double_exact(s.backward_delta);
    }
    for (const auto& s : schedule.server_switches) {
      out << " switch " << format_double_exact(s.time) << ' '
          << sim::to_string(s.kind);
    }
    out << '\n';
  }
  out << "estimators";
  for (const auto& spec : grid.estimators) {
    out << ' ' << escape_field(spec.label());
  }
  out << "\nduration " << format_double_exact(grid.duration);
  out << "\npoll_jitter " << format_double_exact(grid.poll_jitter);
  out << "\nwire " << (grid.use_wire_format ? 1 : 0);
  out << "\nmaster_seed " << grid.master_seed << '\n';
  return out.str();
}

}  // namespace tscclock::sweep
