#include "sweep/scenario_grid.hpp"

#include <algorithm>
#include <cctype>
#include <set>
#include <sstream>
#include <string_view>

#include "common/contracts.hpp"
#include "common/serialize.hpp"
#include "common/table.hpp"
#include "sweep/shard.hpp"

namespace tscclock::sweep {

namespace {

/// splitmix64 finalizer: spreads related inputs (master ^ hash) across the
/// full 64-bit space so mt19937_64 seeds are well decorrelated.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::string_view trim(std::string_view text) {
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.front())))
    text.remove_prefix(1);
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.back())))
    text.remove_suffix(1);
  return text;
}

/// Parse one `fleet` / `fleet(key=value,…)` item. Every rejection names the
/// offending item verbatim — these surface as exit-2 CLI usage errors.
FleetSpec parse_fleet_spec(std::string_view item) {
  const std::string context = "fleet spec '" + std::string(item) + "'";
  if (item.empty()) throw SweepUsageError(context + ": empty spec");

  std::string_view head = item;
  std::string_view body;
  bool has_params = false;
  const std::size_t open = item.find('(');
  if (open != std::string_view::npos) {
    if (item.back() != ')') throw SweepUsageError(context + ": missing ')'");
    head = trim(item.substr(0, open));
    body = item.substr(open + 1, item.size() - open - 2);
    if (body.find('(') != std::string_view::npos ||
        body.find(')') != std::string_view::npos) {
      throw SweepUsageError(context + ": nested or unbalanced parentheses");
    }
    has_params = true;
  } else if (item.find(')') != std::string_view::npos) {
    throw SweepUsageError(context + ": unmatched ')'");
  }
  if (head != "fleet") {
    throw SweepUsageError(context + ": expected 'fleet' or 'fleet(...)', got '" +
                          std::string(head) + "'");
  }

  FleetSpec spec;
  if (!has_params || trim(body).empty()) return spec;

  std::set<std::string> seen_keys;
  std::string_view rest = body;
  while (true) {
    const std::size_t comma = rest.find(',');
    const std::string_view pair = trim(rest.substr(0, comma));
    const std::size_t eq = pair.find('=');
    if (pair.empty() || eq == std::string_view::npos || eq == 0) {
      throw SweepUsageError(context + ": expected key=value, got '" +
                            std::string(pair) + "'");
    }
    const std::string key(trim(pair.substr(0, eq)));
    const std::string value(trim(pair.substr(eq + 1)));
    if (!seen_keys.insert(key).second) {
      throw SweepUsageError(context + ": duplicate key '" + key + "'");
    }
    try {
      if (key == "n") {
        const std::uint64_t n = parse_u64_exact(value);
        if (n < 1 || n > 1024) {
          throw SweepUsageError(context + ": n must be in [1, 1024], got " +
                                value);
        }
        spec.config.n_clients = static_cast<std::size_t>(n);
      } else if (key == "shared_congestion" || key == "hierarchy") {
        if (value != "0" && value != "1") {
          throw SweepUsageError(context + ": " + key +
                                " must be 0 or 1, got '" + value + "'");
        }
        (key == "hierarchy" ? spec.config.hierarchy
                            : spec.config.shared_congestion) = value == "1";
      } else if (key == "bridge_warmup") {
        const double warmup = parse_double_exact(value);
        if (!(warmup >= 0.0)) {
          throw SweepUsageError(context +
                                ": bridge_warmup must be >= 0 seconds, got '" +
                                value + "'");
        }
        spec.config.bridge_warmup = warmup;
      } else {
        throw SweepUsageError(
            context + ": unknown key '" + key +
            "' (tunable keys: n, shared_congestion, hierarchy, "
            "bridge_warmup)");
      }
    } catch (const std::runtime_error& error) {
      // parse_u64_exact/parse_double_exact throw plain runtime_errors;
      // rewrap so every malformed spec surfaces as a usage error.
      if (dynamic_cast<const SweepUsageError*>(&error)) throw;
      throw SweepUsageError(context + ": value '" + value + "' for '" + key +
                            "' does not parse (" + error.what() + ")");
    }
    if (comma == std::string_view::npos) break;
    rest = rest.substr(comma + 1);
  }
  return spec;
}

}  // namespace

std::string FleetSpec::label() const {
  const sim::FleetConfig defaults;
  std::vector<std::string> parts;
  if (config.n_clients != defaults.n_clients)
    parts.push_back(strfmt("n=%zu", config.n_clients));
  if (config.shared_congestion != defaults.shared_congestion)
    parts.push_back("shared_congestion=1");
  if (config.hierarchy != defaults.hierarchy) parts.push_back("hierarchy=1");
  if (config.bridge_warmup != defaults.bridge_warmup)
    parts.push_back(strfmt("bridge_warmup=%g", config.bridge_warmup));
  if (parts.empty()) return "fleet";
  std::string out = "fleet(";
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += ',';
    out += parts[i];
  }
  out += ')';
  return out;
}

std::vector<FleetSpec> parse_fleet_specs(const std::string& text) {
  const std::string context = "fleet list '" + text + "'";
  // Paren-aware top-level comma split (the estimator-axis splitter's
  // technique): commas inside fleet(...) do not separate items.
  std::vector<std::string> items;
  std::string current;
  int depth = 0;
  for (const char c : text) {
    if (c == '(') ++depth;
    if (c == ')' && --depth < 0)
      throw SweepUsageError(context + ": unmatched ')'");
    if (c == ',' && depth == 0) {
      items.push_back(current);
      current.clear();
      continue;
    }
    current += c;
  }
  items.push_back(current);

  std::vector<FleetSpec> specs;
  std::set<std::string> seen;
  for (const auto& item : items) {
    const std::string_view trimmed = trim(item);
    if (trimmed.empty()) throw SweepUsageError(context + ": empty item");
    FleetSpec spec = parse_fleet_spec(trimmed);
    if (!seen.insert(spec.label()).second) {
      throw SweepUsageError(context + ": duplicate fleet spec '" +
                            spec.label() + "'");
    }
    specs.push_back(spec);
  }
  return specs;
}

std::string scenario_name(sim::ServerKind server, sim::Environment environment,
                          Seconds poll_period, const std::string& schedule) {
  return sim::to_string(server) + "/" + sim::to_string(environment) + "/" +
         strfmt("poll%g", poll_period) + "/" + schedule;
}

std::uint64_t scenario_seed(std::uint64_t master_seed,
                            const std::string& identity) {
  return splitmix64(master_seed ^ fnv1a64(identity));
}

std::vector<SweepScenario> expand_grid(const GridSpec& grid) {
  TSC_EXPECTS(!grid.servers.empty());
  TSC_EXPECTS(!grid.environments.empty());
  TSC_EXPECTS(!grid.poll_periods.empty());
  TSC_EXPECTS(!grid.schedules.empty());
  TSC_EXPECTS(!grid.fleets.empty());
  TSC_EXPECTS(grid.duration > 0.0);
  for (const auto poll : grid.poll_periods) TSC_EXPECTS(poll >= kMinPollPeriod);
  for (const auto& fleet : grid.fleets) {
    TSC_EXPECTS(fleet.config.n_clients >= 1);
    TSC_EXPECTS(fleet.config.n_clients <= 1024);
    TSC_EXPECTS(fleet.config.bridge_warmup >= 0.0);
  }
  // The estimator axis is not part of the expansion (it never touches the
  // seeds), but a sweep with no or duplicate estimators is still a grid
  // misconfiguration — reject it where every other axis is validated.
  // Identity is the canonical label, so `robust` and `robust()` collide.
  TSC_EXPECTS(!grid.estimators.empty());
  {
    std::set<std::string> unique_estimators;
    for (const auto& spec : grid.estimators)
      unique_estimators.insert(spec.label());
    TSC_EXPECTS(unique_estimators.size() == grid.estimators.size());
  }

  std::vector<SweepScenario> scenarios;
  scenarios.reserve(grid.size());
  std::set<std::string> seen_names;
  for (const auto server : grid.servers) {
    for (const auto environment : grid.environments) {
      for (const auto poll : grid.poll_periods) {
        for (const auto& schedule : grid.schedules) {
          for (const auto& fleet : grid.fleets) {
            SweepScenario scenario;
            scenario.index = scenarios.size();
            scenario.name =
                scenario_name(server, environment, poll, schedule.name);
            // Single-client cells keep the historical identity (name AND
            // seed): adding the fleet axis must not re-seed or rename any
            // pre-fleet scenario. Non-single cells append the canonical
            // fleet label, which also keys their derived seed.
            if (!fleet.single()) scenario.name += "/" + fleet.label();
            scenario.fleet = fleet;
            // Identity = name = seed derivation input: a duplicate axis
            // value (or two schedules sharing a name) would silently
            // collapse two cells onto one RNG stream.
            TSC_EXPECTS(seen_names.insert(scenario.name).second);

            sim::ScenarioConfig& config = scenario.config;
            config.server = server;
            config.environment = environment;
            config.poll_period = poll;
            // Poll jitter must stay strictly inside half the poll period
            // (Testbed contract); clamp for short poll periods.
            config.poll_jitter = std::min(grid.poll_jitter, poll / 4);
            config.duration = grid.duration;
            config.use_wire_format = grid.use_wire_format;
            config.check_wire = grid.check_wire;
            config.events = schedule.events;
            config.server_switches = schedule.server_switches;
            config.seed = scenario_seed(grid.master_seed, scenario.name);

            scenarios.push_back(std::move(scenario));
          }
        }
      }
    }
  }
  // Imported traces ride behind the cartesian cells, one scenario per file.
  // The seed is derived like any other cell's (identity = name) even though
  // a replayed trace consumes no randomness — result rows must carry a
  // well-defined seed column either way.
  for (const auto& path : grid.trace_inputs) {
    TSC_EXPECTS(!path.empty());
    SweepScenario scenario;
    scenario.index = scenarios.size();
    scenario.name = "trace:" + path;
    TSC_EXPECTS(seen_names.insert(scenario.name).second);
    scenario.trace_path = path;
    scenario.config.seed = scenario_seed(grid.master_seed, scenario.name);
    scenarios.push_back(std::move(scenario));
  }
  return scenarios;
}

std::string grid_descriptor(const GridSpec& grid) {
  // Every field below can change a result cell; nothing else in GridSpec
  // can. Doubles are rendered in exact hexfloat so two descriptors are
  // equal iff the grids are value-identical (no %g collision window).
  std::ostringstream out;
  out << "tscclock-grid v3\n";  // v3: trace-input axis joined the fingerprint
  out << "servers";
  for (const auto server : grid.servers) out << ' ' << sim::to_string(server);
  out << "\nenvironments";
  for (const auto environment : grid.environments) {
    out << ' ' << sim::to_string(environment);
  }
  out << "\npolls";
  for (const auto poll : grid.poll_periods) {
    out << ' ' << format_double_exact(poll);
  }
  out << '\n';
  for (const auto& schedule : grid.schedules) {
    // Schedules carry structure, not just a name: two invocations may both
    // say "outage" yet place the gap differently (the CLI derives event
    // times from the duration). Serialize the contents.
    out << "schedule " << escape_field(schedule.name);
    for (const auto& o : schedule.events.outages()) {
      out << " outage " << format_double_exact(o.start) << ' '
          << format_double_exact(o.end);
    }
    for (const auto& f : schedule.events.server_faults()) {
      out << " fault " << format_double_exact(f.start) << ' '
          << format_double_exact(f.end) << ' '
          << format_double_exact(f.offset);
    }
    for (const auto& s : schedule.events.level_shifts()) {
      out << " shift " << format_double_exact(s.start) << ' '
          << format_double_exact(s.end) << ' '
          << format_double_exact(s.forward_delta) << ' '
          << format_double_exact(s.backward_delta);
    }
    for (const auto& s : schedule.server_switches) {
      out << " switch " << format_double_exact(s.time) << ' '
          << sim::to_string(s.kind);
    }
    out << '\n';
  }
  out << "estimators";
  for (const auto& spec : grid.estimators) {
    out << ' ' << escape_field(spec.label());
  }
  // Fleet axis, structurally: the canonical label elides defaults, so the
  // fingerprint spells every tunable out in exact form instead.
  out << "\nfleets";
  for (const auto& fleet : grid.fleets) {
    out << " n " << fleet.config.n_clients << " sc "
        << (fleet.config.shared_congestion ? 1 : 0) << " hier "
        << (fleet.config.hierarchy ? 1 : 0) << " bw "
        << format_double_exact(fleet.config.bridge_warmup);
  }
  // Trace inputs are identified by path: the cell re-reads the file at run
  // time, so the path IS the cell's identity (a changed file under the same
  // path is the same caveat any checkpointed input file has).
  out << "\ntraces";
  for (const auto& path : grid.trace_inputs) out << ' ' << escape_field(path);
  out << "\nduration " << format_double_exact(grid.duration);
  out << "\npoll_jitter " << format_double_exact(grid.poll_jitter);
  out << "\nwire " << (grid.use_wire_format ? 1 : 0);
  out << "\nmaster_seed " << grid.master_seed << '\n';
  return out.str();
}

}  // namespace tscclock::sweep
