#include "sweep/scenario_grid.hpp"

#include <algorithm>
#include <set>

#include "common/contracts.hpp"
#include "common/table.hpp"

namespace tscclock::sweep {

namespace {

/// FNV-1a 64-bit over the identity string.
std::uint64_t fnv1a(const std::string& text) {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

/// splitmix64 finalizer: spreads related inputs (master ^ hash) across the
/// full 64-bit space so mt19937_64 seeds are well decorrelated.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

std::string scenario_name(sim::ServerKind server, sim::Environment environment,
                          Seconds poll_period, const std::string& schedule) {
  return sim::to_string(server) + "/" + sim::to_string(environment) + "/" +
         strfmt("poll%g", poll_period) + "/" + schedule;
}

std::uint64_t scenario_seed(std::uint64_t master_seed,
                            const std::string& identity) {
  return splitmix64(master_seed ^ fnv1a(identity));
}

std::vector<SweepScenario> expand_grid(const GridSpec& grid) {
  TSC_EXPECTS(!grid.servers.empty());
  TSC_EXPECTS(!grid.environments.empty());
  TSC_EXPECTS(!grid.poll_periods.empty());
  TSC_EXPECTS(!grid.schedules.empty());
  TSC_EXPECTS(grid.duration > 0.0);
  for (const auto poll : grid.poll_periods) TSC_EXPECTS(poll >= kMinPollPeriod);
  // The estimator axis is not part of the expansion (it never touches the
  // seeds), but a sweep with no or duplicate estimators is still a grid
  // misconfiguration — reject it where every other axis is validated.
  // Identity is the canonical label, so `robust` and `robust()` collide.
  TSC_EXPECTS(!grid.estimators.empty());
  {
    std::set<std::string> unique_estimators;
    for (const auto& spec : grid.estimators)
      unique_estimators.insert(spec.label());
    TSC_EXPECTS(unique_estimators.size() == grid.estimators.size());
  }

  std::vector<SweepScenario> scenarios;
  scenarios.reserve(grid.size());
  std::set<std::string> seen_names;
  for (const auto server : grid.servers) {
    for (const auto environment : grid.environments) {
      for (const auto poll : grid.poll_periods) {
        for (const auto& schedule : grid.schedules) {
          SweepScenario scenario;
          scenario.index = scenarios.size();
          scenario.name =
              scenario_name(server, environment, poll, schedule.name);
          // Identity = name = seed derivation input: a duplicate axis value
          // (or two schedules sharing a name) would silently collapse two
          // cells onto one RNG stream.
          TSC_EXPECTS(seen_names.insert(scenario.name).second);

          sim::ScenarioConfig& config = scenario.config;
          config.server = server;
          config.environment = environment;
          config.poll_period = poll;
          // Poll jitter must stay strictly inside half the poll period
          // (Testbed contract); clamp for short poll periods.
          config.poll_jitter = std::min(grid.poll_jitter, poll / 4);
          config.duration = grid.duration;
          config.use_wire_format = grid.use_wire_format;
          config.events = schedule.events;
          config.server_switches = schedule.server_switches;
          config.seed = scenario_seed(grid.master_seed, scenario.name);

          scenarios.push_back(std::move(scenario));
        }
      }
    }
  }
  return scenarios;
}

}  // namespace tscclock::sweep
