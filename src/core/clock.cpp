#include "core/clock.hpp"

#include "common/contracts.hpp"
#include "core/naive.hpp"

namespace tscclock::core {

TscNtpClock::TscNtpClock(const Params& params, double nominal_period)
    : params_(params),
      timescale_(0, 0.0, nominal_period),
      filter_(params),
      rate_(params, nominal_period),
      local_rate_(params),
      offset_(params),
      shifts_(params),
      top_window_(params) {
  params.validate();
  TSC_EXPECTS(nominal_period > 0.0);
}

ProcessReport TscNtpClock::process_exchange(const RawExchange& exchange) {
  TSC_EXPECTS(counter_delta(exchange.tf, exchange.ta) > 0);
  if (initialized_)
    TSC_EXPECTS(counter_delta(exchange.ta, prev_tf_) >= 0);

  ProcessReport report;
  const TscDelta rtt = exchange.rtt_counts();

  if (!initialized_) {
    // Align C's origin so the first naive offset is zero: the clock starts
    // on the server midpoint ("the first estimate is just the server
    // timestamp", §6.1).
    const Seconds host_half_rtt =
        0.5 * delta_to_seconds(rtt, timescale_.period());
    const Seconds server_mid = 0.5 * (exchange.tb + exchange.te);
    timescale_ = CounterTimescale(exchange.tf, server_mid + host_half_rtt,
                                  timescale_.period());
    initialized_ = true;
  } else {
    const Seconds gap = timescale_.between(prev_tf_, exchange.tf);
    report.gap_detected = gap > params_.gap_threshold;
  }

  // 1. RTT filtering and level-shift detection (may move r̂).
  filter_.add(rtt);
  report.shift = shifts_.check(filter_, timescale_.period(), seq_);

  // 2. Point error against the (possibly shifted) minimum.
  PacketRecord record;
  record.seq = seq_;
  record.stamps = exchange;
  record.rtt = rtt;
  record.error_counts = rtt - filter_.rhat();
  if (record.error_counts < 0) record.error_counts = 0;
  report.point_error = filter_.point_error(rtt, timescale_.period());

  if (report.shift && report.shift->upward)
    offset_.reassess_errors(filter_.rhat(), report.shift->shift_seq);

  // 3. Global rate p̄; preserve clock continuity on every p̂ change (§6.1).
  const auto rate_result = rate_.process(record, report.point_error);
  report.rate_accepted = rate_result.accepted;
  report.rate_updated = rate_result.updated;
  report.rate_sanity_released = rate_result.sanity_released;
  if (rate_result.updated)
    timescale_.set_period_preserving_reading(exchange.tf, rate_.period());

  // 4. Quasi-local rate p̂_l.
  local_rate_.process(record, report.point_error, rate_.period());
  const double gamma_local =
      (params_.use_local_rate && local_rate_.usable())
          ? local_rate_.residual_rate(rate_.period())
          : 0.0;

  // 5. Robust offset θ̂(t).
  report.naive_offset = naive_offset(exchange, timescale_);
  const auto eval =
      offset_.process(record, timescale_, gamma_local, report.gap_detected,
                      !rate_.warmed_up());
  report.offset_estimate = eval.estimate;
  report.offset_weighted = eval.weighted;
  report.offset_fallback = eval.fallback;
  report.gap_blend = eval.gap_blend;
  report.sanity_triggered = eval.sanity_triggered;
  report.offset_sanity_released = eval.sanity_released;

  current_offset_ = eval.estimate;
  offset_anchor_ = exchange.tf;
  offset_slope_ = gamma_local;

  // 6. Top-level window maintenance.
  const auto update = top_window_.add(record, shifts_.last_upshift_seq());
  if (update.triggered) {
    filter_.force_rhat(update.new_rhat);
    const auto& anchor = rate_.anchor();
    if (anchor && anchor->seq < update.oldest_seq &&
        update.anchor_candidate) {
      rate_.replace_anchor(
          *update.anchor_candidate,
          delta_to_seconds(update.anchor_error_counts, rate_.period()));
    }
  }

  prev_tf_ = exchange.tf;
  ++seq_;
  return report;
}

void TscNtpClock::notify_server_change() {
  filter_.reset_all();
  offset_.degrade_window(timescale_.period());
  ++server_changes_;
}

Seconds TscNtpClock::uncorrected_time(TscCount count) const {
  TSC_EXPECTS(initialized_);
  return timescale_.read(count);
}

Seconds TscNtpClock::absolute_time(TscCount count) const {
  TSC_EXPECTS(initialized_);
  // θ̂ extrapolated per eq. (23): θ̂(t) = θ̂(t_last) − γ̂_l·(Cd(t) − Cd(t_last)).
  const Seconds age = timescale_.between(offset_anchor_, count);
  const Seconds theta = current_offset_ - offset_slope_ * age;
  return timescale_.read(count) - theta;
}

Seconds TscNtpClock::difference(TscCount earlier, TscCount later) const {
  return timescale_.between(earlier, later);
}

ClockStatus TscNtpClock::status() const {
  ClockStatus s;
  s.packets_processed = seq_;
  s.rate_accepted = rate_.accepted_count();
  s.offset_sanity_triggers = offset_.sanity_count();
  s.offset_fallbacks = offset_.fallback_count();
  s.gap_blends = offset_.gap_blend_count();
  s.local_rate_sanity_blocks = local_rate_.sanity_count();
  s.rate_sanity_blocks = rate_.sanity_count();
  s.rate_sanity_releases = rate_.release_count();
  s.offset_sanity_releases = offset_.release_count();
  s.upshifts = shifts_.upshift_count();
  s.downshifts = shifts_.downshift_count();
  s.top_window_updates = top_window_.updates();
  s.server_changes = server_changes_;
  s.warmed_up = rate_.warmed_up();
  s.period = rate_.period();
  s.period_quality = rate_.quality();
  s.local_rate_usable = local_rate_.usable();
  s.local_rate_residual = local_rate_.usable()
                              ? local_rate_.residual_rate(rate_.period())
                              : 0.0;
  s.offset = offset_.has_estimate() ? offset_.estimate() : 0.0;
  s.min_rtt = filter_.valid()
                  ? delta_to_seconds(filter_.rhat(), rate_.period())
                  : 0.0;
  return s;
}

}  // namespace tscclock::core
