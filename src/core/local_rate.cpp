#include "core/local_rate.hpp"

#include <cmath>

#include "common/contracts.hpp"
#include "core/naive.hpp"

namespace tscclock::core {

LocalRateEstimator::LocalRateEstimator(const Params& params)
    : params_(params),
      // Window spans ages up to τ̄(1 + 1/W); keep a little slack for poll
      // jitter so the far sub-window is never starved by rounding.
      window_(params.packets(params.local_rate_window *
                             (1.0 + 1.0 / static_cast<double>(
                                              params.local_rate_subwindows))) +
              2) {
  params.validate();
}

double LocalRateEstimator::period() const {
  TSC_EXPECTS(has_estimate_);
  return period_;
}

double LocalRateEstimator::residual_rate(double pbar) const {
  TSC_EXPECTS(pbar > 0.0);
  if (!usable()) return 0.0;
  return period_ / pbar - 1.0;
}

LocalRateEstimator::Result LocalRateEstimator::process(
    const PacketRecord& packet, Seconds point_error, double pbar) {
  TSC_EXPECTS(pbar > 0.0);
  Result result;

  // Gap detection: a pause longer than τ̄/2 makes the window stale.
  if (!window_.empty()) {
    const Seconds gap = delta_to_seconds(
        counter_delta(packet.stamps.tf, window_.back().packet.stamps.tf),
        pbar);
    if (gap > params_.gap_threshold) {
      window_.clear();
      stale_ = true;
      result.gap_reset = true;
    }
  }
  window_.push_back({packet, point_error});

  const double tau_bar = params_.local_rate_window;
  const double sub = tau_bar / static_cast<double>(params_.local_rate_subwindows);

  // Age (via the difference clock at p̄) of the oldest packet decides whether
  // a full window is available; until then a stale flag cannot clear.
  const Seconds span = delta_to_seconds(
      counter_delta(packet.stamps.tf, window_.front().packet.stamps.tf), pbar);
  if (span >= tau_bar - sub) stale_ = false;

  // Select the best-quality packet in the near and far sub-windows.
  bool have_near = false;
  bool have_far = false;
  std::size_t near_idx = 0;
  std::size_t far_idx = 0;
  for (std::size_t k = 0; k < window_.size(); ++k) {
    const Seconds age = delta_to_seconds(
        counter_delta(packet.stamps.tf, window_[k].packet.stamps.tf), pbar);
    if (age < sub) {
      if (!have_near || window_[k].error < window_[near_idx].error) {
        near_idx = k;
        have_near = true;
      }
    } else if (age >= tau_bar - sub && age < tau_bar + sub) {
      if (!have_far || window_[k].error < window_[far_idx].error) {
        far_idx = k;
        have_far = true;
      }
    }
  }
  if (!have_near || !have_far) return result;

  const auto& i = window_[near_idx];
  const auto& j = window_[far_idx];
  if (counter_delta(i.packet.stamps.ta, j.packet.stamps.ta) <= 0) return result;
  result.evaluated = true;

  const Seconds pair_span = delta_to_seconds(
      counter_delta(i.packet.stamps.tf, j.packet.stamps.tf), pbar);
  const double quality = (i.error + j.error) / pair_span;
  if (quality > params_.local_rate_quality) return result;  // keep previous

  const double candidate = naive_rate(j.packet.stamps, i.packet.stamps).combined;

  // Sanity check: the hardware bounds successive changes (§5.2).
  if (params_.enable_rate_sanity && has_estimate_) {
    const double rel = std::fabs(candidate / period_ - 1.0);
    if (rel > params_.rate_sanity_threshold) {
      ++sanity_;
      result.sanity_blocked = true;
      return result;  // duplicate previous value
    }
  }

  period_ = candidate;
  has_estimate_ = true;
  ++accepted_;
  result.accepted = true;
  return result;
}

}  // namespace tscclock::core
