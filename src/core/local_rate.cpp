#include "core/local_rate.hpp"

#include <algorithm>
#include <cmath>
#include <iterator>

#include "common/contracts.hpp"
#include "core/naive.hpp"

namespace tscclock::core {

LocalRateEstimator::LocalRateEstimator(const Params& params)
    : params_(params),
      // Window spans ages up to τ̄(1 + 1/W); keep a little slack for poll
      // jitter so the far sub-window is never starved by rounding.
      window_(params.packets(params.local_rate_window *
                             (1.0 + 1.0 / static_cast<double>(
                                              params.local_rate_subwindows))) +
              2) {
  params.validate();
}

double LocalRateEstimator::period() const {
  TSC_EXPECTS(has_estimate_);
  return period_;
}

double LocalRateEstimator::residual_rate(double pbar) const {
  TSC_EXPECTS(pbar > 0.0);
  if (!usable()) return 0.0;
  return period_ / pbar - 1.0;
}

LocalRateEstimator::Result LocalRateEstimator::process(
    const PacketRecord& packet, Seconds point_error, double pbar) {
  TSC_EXPECTS(pbar > 0.0);
  Result result;

  // Gap detection: a pause longer than τ̄/2 makes the window stale.
  if (!window_.empty()) {
    const Seconds gap = delta_to_seconds(
        counter_delta(packet.stamps.tf, window_.back().packet.stamps.tf),
        pbar);
    if (gap > params_.gap_threshold) {
      window_.clear();
      stale_ = true;
      result.gap_reset = true;
    }
  }
  window_.push_back({packet, point_error});

  const double tau_bar = params_.local_rate_window;
  const double sub = tau_bar / static_cast<double>(params_.local_rate_subwindows);

  // Age (via the difference clock at p̄) of the oldest packet decides whether
  // a full window is available; until then a stale flag cannot clear.
  const Seconds span = delta_to_seconds(
      counter_delta(packet.stamps.tf, window_.front().packet.stamps.tf), pbar);
  if (span >= tau_bar - sub) stale_ = false;

  // Select the best-quality packet in the near and far sub-windows. Because
  // t_f is strictly increasing over the window and p̄ > 0 is fixed for this
  // call, age(k) is non-increasing in k, so each sub-window is a contiguous
  // index range: locate its boundaries by binary search on the very same age
  // predicate a straight scan would evaluate, then min-scan only the (few)
  // in-range entries in ascending order so strict-less / earliest-index
  // tie-breaking — and therefore the selected pair — is bit-identical to the
  // former full-window scan. With W sub-windows this touches ~3/W of the
  // window instead of all of it.
  const auto age_of = [&](const Entry& e) {
    return delta_to_seconds(counter_delta(packet.stamps.tf, e.packet.stamps.tf),
                            pbar);
  };
  const auto first = window_.begin();
  const auto last = window_.end();
  // First index whose age drops below `sub`: start of the near sub-window,
  // which extends to the end of the window (the current packet has age 0).
  const auto near_begin = std::partition_point(
      first, last, [&](const Entry& e) { return age_of(e) >= sub; });
  // The far sub-window [τ̄ − sub, τ̄ + sub) sits at lower indices; restricting
  // the search to [first, near_begin) also reproduces the straight scan's
  // else-if, which never classifies a near packet as far.
  const auto far_begin = std::partition_point(
      first, near_begin,
      [&](const Entry& e) { return age_of(e) >= tau_bar + sub; });
  const auto far_end = std::partition_point(
      far_begin, near_begin,
      [&](const Entry& e) { return age_of(e) >= tau_bar - sub; });

  const auto best_of = [](auto begin, auto end) {
    auto best = begin;
    for (auto it = std::next(begin); it != end; ++it)
      if (it->error < best->error) best = it;
    return best;
  };
  if (near_begin == last || far_begin == far_end) return result;

  const auto& i = *best_of(near_begin, last);
  const auto& j = *best_of(far_begin, far_end);
  if (counter_delta(i.packet.stamps.ta, j.packet.stamps.ta) <= 0) return result;
  result.evaluated = true;

  const Seconds pair_span = delta_to_seconds(
      counter_delta(i.packet.stamps.tf, j.packet.stamps.tf), pbar);
  const double quality = (i.error + j.error) / pair_span;
  if (quality > params_.local_rate_quality) return result;  // keep previous

  const double candidate = naive_rate(j.packet.stamps, i.packet.stamps).combined;

  // Sanity check: the hardware bounds successive changes (§5.2).
  if (params_.enable_rate_sanity && has_estimate_) {
    const double rel = std::fabs(candidate / period_ - 1.0);
    if (rel > params_.rate_sanity_threshold) {
      ++sanity_;
      result.sanity_blocked = true;
      return result;  // duplicate previous value
    }
  }

  period_ = candidate;
  has_estimate_ = true;
  ++accepted_;
  result.accepted = true;
  return result;
}

}  // namespace tscclock::core
