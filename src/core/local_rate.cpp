#include "core/local_rate.hpp"

#include <algorithm>
#include <cmath>
#include <iterator>

#include "common/contracts.hpp"
#include "core/naive.hpp"

namespace tscclock::core {

LocalRateEstimator::LocalRateEstimator(const Params& params)
    : params_(params),
      // Window spans ages up to τ̄(1 + 1/W); keep a little slack for poll
      // jitter so the far sub-window is never starved by rounding.
      window_(params.packets(params.local_rate_window *
                             (1.0 + 1.0 / static_cast<double>(
                                              params.local_rate_subwindows))) +
              2),
      errors_(window_.capacity()) {
  params.validate();
}

double LocalRateEstimator::period() const {
  TSC_EXPECTS(has_estimate_);
  return period_;
}

double LocalRateEstimator::residual_rate(double pbar) const {
  TSC_EXPECTS(pbar > 0.0);
  if (!usable()) return 0.0;
  return period_ / pbar - 1.0;
}

LocalRateEstimator::Result LocalRateEstimator::process(
    const PacketRecord& packet, Seconds point_error, double pbar) {
  TSC_EXPECTS(pbar > 0.0);
  Result result;

  // Gap detection: a pause longer than τ̄/2 makes the window stale.
  if (!window_.empty()) {
    const Seconds gap = delta_to_seconds(
        counter_delta(packet.stamps.tf, window_.back().packet.stamps.tf),
        pbar);
    if (gap > params_.gap_threshold) {
      window_.clear();
      errors_.clear();
      stale_ = true;
      result.gap_reset = true;
    }
  }
  window_.push_back({packet, point_error});
  errors_.push_back(point_error);
  ++total_pushed_;

  const double tau_bar = params_.local_rate_window;
  const double sub = tau_bar / static_cast<double>(params_.local_rate_subwindows);

  // Age (via the difference clock at p̄) of the oldest packet decides whether
  // a full window is available; until then a stale flag cannot clear.
  const Seconds span = delta_to_seconds(
      counter_delta(packet.stamps.tf, window_.front().packet.stamps.tf), pbar);
  if (span >= tau_bar - sub) stale_ = false;

  // Select the best-quality packet in the near and far sub-windows. Because
  // t_f is strictly increasing over the window and p̄ > 0 is fixed for this
  // call, age(k) is non-increasing in k, so each sub-window is a contiguous
  // index range. Its boundaries move forward roughly one step per exchange,
  // so instead of re-searching from scratch each call, persistent cursors
  // (absolute stream positions) walk bidirectionally from last call's
  // boundary to this call's — the walk evaluates the very same age predicate
  // a binary search would and lands on the exact partition point, amortized
  // O(1) per exchange. The min-scans then touch only the (few) in-range
  // entries in ascending order, so strict-less / earliest-index tie-breaking
  // — and therefore the selected pair — is bit-identical to a full scan.
  const auto age_of = [&](const Entry& e) {
    return delta_to_seconds(counter_delta(packet.stamps.tf, e.packet.stamps.tf),
                            pbar);
  };
  const auto first = window_.begin();
  const std::uint64_t first_abs = total_pushed_ - window_.size();
  // Partition point of `pred` over absolute range [lo, hi], found by walking
  // from `hint` (clamped): forward while pred holds, backward while the
  // element before fails it. Exact because pred is true on a prefix.
  const auto seek = [&](std::uint64_t lo, std::uint64_t hi, std::uint64_t hint,
                        auto&& pred) {
    std::uint64_t b = std::clamp(hint, lo, hi);
    while (b < hi && pred(first[static_cast<std::ptrdiff_t>(b - first_abs)]))
      ++b;
    while (b > lo &&
           !pred(first[static_cast<std::ptrdiff_t>(b - 1 - first_abs)]))
      --b;
    return b;
  };
  // First index whose age drops below `sub`: start of the near sub-window,
  // which extends to the end of the window (the current packet has age 0).
  const std::uint64_t near_begin_abs =
      seek(first_abs, total_pushed_, near_begin_hint_,
           [&](const Entry& e) { return age_of(e) >= sub; });
  // The far sub-window [τ̄ − sub, τ̄ + sub) sits at lower indices; restricting
  // the search to [first, near_begin) also reproduces a straight scan's
  // else-if, which never classifies a near packet as far.
  const std::uint64_t far_begin_abs =
      seek(first_abs, near_begin_abs, far_begin_hint_,
           [&](const Entry& e) { return age_of(e) >= tau_bar + sub; });
  const std::uint64_t far_end_abs =
      seek(far_begin_abs, near_begin_abs, far_end_hint_,
           [&](const Entry& e) { return age_of(e) >= tau_bar - sub; });
  near_begin_hint_ = near_begin_abs;
  far_begin_hint_ = far_begin_abs;
  far_end_hint_ = far_end_abs;
  if (near_begin_abs == total_pushed_ || far_begin_abs == far_end_abs)
    return result;

  // Min-scan the packed error column (same ascending order and strict-less
  // comparison as scanning the Entry structs, so the selected index — and
  // earliest-index tie-breaking — is unchanged), then touch only the two
  // winning wide entries.
  const auto err = errors_.begin();
  const auto best_of = [&](std::uint64_t lo_abs, std::uint64_t hi_abs) {
    std::ptrdiff_t best = static_cast<std::ptrdiff_t>(lo_abs - first_abs);
    const auto lo = static_cast<std::ptrdiff_t>(lo_abs - first_abs);
    const auto hi = static_cast<std::ptrdiff_t>(hi_abs - first_abs);
    for (std::ptrdiff_t k = lo + 1; k < hi; ++k)
      if (err[k] < err[best]) best = k;
    return best;
  };
  const auto& i = first[best_of(near_begin_abs, total_pushed_)];
  const auto& j = first[best_of(far_begin_abs, far_end_abs)];
  if (counter_delta(i.packet.stamps.ta, j.packet.stamps.ta) <= 0) return result;
  result.evaluated = true;

  const Seconds pair_span = delta_to_seconds(
      counter_delta(i.packet.stamps.tf, j.packet.stamps.tf), pbar);
  const double quality = (i.error + j.error) / pair_span;
  if (quality > params_.local_rate_quality) return result;  // keep previous

  const double candidate = naive_rate(j.packet.stamps, i.packet.stamps).combined;

  // Sanity check: the hardware bounds successive changes (§5.2).
  if (params_.enable_rate_sanity && has_estimate_) {
    const double rel = std::fabs(candidate / period_ - 1.0);
    if (rel > params_.rate_sanity_threshold) {
      ++sanity_;
      result.sanity_blocked = true;
      return result;  // duplicate previous value
    }
  }

  period_ = candidate;
  has_estimate_ = true;
  ++accepted_;
  result.accepted = true;
  return result;
}

}  // namespace tscclock::core
