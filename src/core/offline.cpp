#include "core/offline.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "core/naive.hpp"

namespace tscclock::core {

namespace {

/// Whole-trace robust rate: the §5.2 estimator collapsed to its essence —
/// pair the best-quality packet of the first quarter with the best of the
/// last quarter, restricted to point errors below E*.
double whole_trace_period(std::span<const RawExchange> trace,
                          TscDelta rhat_counts, const Params& params,
                          double nominal_period) {
  const auto best_in = [&](std::size_t begin, std::size_t end) {
    std::size_t best = begin;
    for (std::size_t k = begin; k < end; ++k)
      if (trace[k].rtt_counts() < trace[best].rtt_counts()) best = k;
    return best;
  };
  const std::size_t n = trace.size();
  const std::size_t quarter = std::max<std::size_t>(1, n / 4);
  const std::size_t j = best_in(0, quarter);
  const std::size_t i = best_in(n - quarter, n);
  if (i == j || counter_delta(trace[i].ta, trace[j].ta) <= 0)
    return nominal_period;

  // Degenerate pair: with the two best packets sharing the same Tf the
  // baseline is empty (and the naive backward rate divides by zero), so
  // there is no rate information — keep the configured nominal. Guarding
  // span > 0 also rejects the quality ratio below ever becoming inf/NaN,
  // which would *pass* the > comparison by failing it and silently accept
  // a garbage candidate rate.
  const Seconds span = delta_to_seconds(
      counter_delta(trace[i].tf, trace[j].tf), nominal_period);
  if (!(span > 0.0)) return nominal_period;

  // Accept the pair only if its quality is meaningful; otherwise keep the
  // configured nominal (the caller's trace is then too short/noisy).
  const double candidate = naive_rate(trace[j], trace[i]).combined;
  const Seconds ei = delta_to_seconds(
      trace[i].rtt_counts() - rhat_counts, nominal_period);
  const Seconds ej = delta_to_seconds(
      trace[j].rtt_counts() - rhat_counts, nominal_period);
  const Seconds total = ei + ej;
  if (!std::isfinite(total) || !std::isfinite(candidate) ||
      total / span > params.rate_error_bound) {
    return nominal_period;
  }
  return candidate;
}

}  // namespace

OfflineResult smooth_offsets(std::span<const RawExchange> trace,
                             const Params& params, double nominal_period) {
  params.validate();
  TSC_EXPECTS(trace.size() >= 2);
  TSC_EXPECTS(nominal_period > 0.0);

  OfflineResult result;

  // Whole-trace minimum RTT (one global level; traces spanning known level
  // shifts should be split at the shift points by the caller).
  TscDelta rhat = trace.front().rtt_counts();
  for (const auto& ex : trace) rhat = std::min(rhat, ex.rtt_counts());
  result.rhat_counts = rhat;

  result.period = whole_trace_period(trace, rhat, params, nominal_period);

  // Anchor C at the first packet's server midpoint (same convention as the
  // on-line clock) — the constant cancels in all downstream differences.
  const Seconds first_mid = 0.5 * (trace.front().tb + trace.front().te);
  const Seconds first_half_rtt =
      0.5 * delta_to_seconds(trace.front().rtt_counts(), result.period);
  result.timescale = CounterTimescale(trace.front().tf,
                                      first_mid + first_half_rtt,
                                      result.period);

  // Precompute naive offsets and point errors.
  const std::size_t n = trace.size();
  std::vector<Seconds> naive(n);
  std::vector<Seconds> point_error(n);
  for (std::size_t i = 0; i < n; ++i) {
    naive[i] = naive_offset(trace[i], result.timescale);
    point_error[i] = delta_to_seconds(trace[i].rtt_counts() - rhat,
                                      result.period);
  }

  // Two-sided weighted smoothing: for packet k use every packet within
  // ± τ'/2 (the same total window width as the on-line estimator), with
  // total error E_i + ε·|t_i − t_k|.
  result.offsets.resize(n);
  const Seconds half_window = params.offset_window / 2;
  std::size_t lo = 0;
  for (std::size_t k = 0; k < n; ++k) {
    while (lo < k &&
           result.timescale.between(trace[lo].tf, trace[k].tf) > half_window)
      ++lo;
    double weight_sum = 0;
    double weighted = 0;
    Seconds best_total = std::numeric_limits<double>::infinity();
    std::size_t best_idx = k;
    for (std::size_t i = lo; i < n; ++i) {
      const Seconds distance =
          std::fabs(result.timescale.between(trace[i].tf, trace[k].tf));
      if (i > k && distance > half_window) break;
      const Seconds total =
          point_error[i] + (params.enable_aging
                                ? params.aging_rate * distance
                                : 0.0);
      if (total < best_total) {
        best_total = total;
        best_idx = i;
      }
      const double z = total / params.offset_quality;
      const double w = std::exp(-z * z);
      weight_sum += w;
      weighted += w * naive[i];
    }
    if (best_total <= params.extreme_quality() && weight_sum > 0.0) {
      result.offsets[k] = weighted / weight_sum;
    } else {
      // Whole window poor: fall back to the best packet in it (two-sided,
      // so this is already the nearest good information in either
      // direction).
      result.offsets[k] = naive[best_idx];
      ++result.poor_windows;
    }
  }
  return result;
}

}  // namespace tscclock::core
