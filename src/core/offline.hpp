// Offline (two-sided) offset post-processing.
//
// §5.3: "for many applications, post processing of data would allow both
// future and past values to be used to improve estimates. In particular
// this makes good performance immediately following long periods of
// congestion or sequential packet loss much easier to achieve."
//
// This module implements that smoother: given a complete trace, the offset
// at each packet is estimated from a *symmetric* window of naive per-packet
// offsets, each weighted by its RTT point error aged by |distance in time|
// — the two-sided analogue of the on-line stage (i)-(iii). Rate is fixed to
// the robust whole-trace estimate (the paper does the same for its off-line
// analyses), so there is no warm-up and no causality constraint.
#pragma once

#include <span>
#include <vector>

#include "common/time_types.hpp"
#include "core/params.hpp"
#include "core/records.hpp"

namespace tscclock::core {

struct OfflineResult {
  /// Smoothed offset estimate θ̂(t_i) for every input exchange, in input
  /// order.
  std::vector<Seconds> offsets;
  /// The fixed timescale used for all conversions (anchored at the first
  /// packet, robust whole-trace period).
  CounterTimescale timescale;
  double period = 0;        ///< whole-trace robust p̄
  TscDelta rhat_counts = 0; ///< whole-trace minimum RTT
  std::size_t poor_windows = 0;  ///< packets where even the best total
                                 ///< error exceeded E** (estimate falls
                                 ///< back to the nearest good packet)
};

/// Smooth a complete trace. The exchanges must be in send order.
/// Throws ContractViolation for traces with fewer than two packets.
OfflineResult smooth_offsets(std::span<const RawExchange> trace,
                             const Params& params, double nominal_period);

}  // namespace tscclock::core
