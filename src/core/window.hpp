// Top-level sliding window (paper §6.1 "Windowing").
//
// Conditions change over arbitrarily long horizons (aging, environment,
// route changes), so the past must eventually be forgotten and per-packet
// history bounded. A window of width T (default one week) is maintained;
// each time it fills, the oldest half is discarded and:
//
//   * r̂ is recomputed over the retained half — restricted to packets after
//     the last detected upward shift point, if any;
//   * if the rate anchor packet j was discarded, a replacement of similar
//     or better quality is nominated from the retained data.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>

#include "common/ring_buffer.hpp"
#include "common/time_types.hpp"
#include "core/params.hpp"
#include "core/records.hpp"

namespace tscclock::core {

class TopWindow {
 public:
  explicit TopWindow(const Params& params);

  struct Update {
    bool triggered = false;
    TscDelta new_rhat = 0;
    std::uint64_t oldest_seq = 0;  ///< first seq still inside the window
    std::optional<PacketRecord> anchor_candidate;
    TscDelta anchor_error_counts = 0;  ///< vs new_rhat
  };

  /// Record a packet; triggers a window update when the buffer reaches T.
  /// `min_valid_seq` restricts the minimum recomputation to packets at or
  /// after the last upward shift point.
  Update add(const PacketRecord& packet, std::uint64_t min_valid_seq);

  [[nodiscard]] std::size_t stored() const { return history_.size(); }
  [[nodiscard]] std::uint64_t updates() const { return updates_; }

 private:
  /// Suffix-minimum structure maintained incrementally: entries are kept
  /// with strictly increasing seq AND strictly increasing rtt, so for any
  /// bound s the minimum rtt over retained packets with seq >= s is the
  /// first entry with seq >= s. O(1) amortized per add; window updates stop
  /// rescanning the retained half for its minima.
  struct SuffixMin {
    std::uint64_t seq = 0;
    TscDelta rtt = 0;
  };

  Params params_;
  RingBuffer<PacketRecord> history_;  ///< unbounded; trimmed by updates
  std::deque<SuffixMin> suffix_min_;
  std::uint64_t updates_ = 0;
};

}  // namespace tscclock::core
