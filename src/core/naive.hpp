// The naive estimators of paper §4 — both the building blocks of the robust
// algorithms and the baselines that figures 5 and 6 contrast against.
#pragma once

#include "common/time_types.hpp"
#include "core/records.hpp"

namespace tscclock::core {

/// Naive period estimates between exchanges j (earlier) and i (later):
///   forward  (eq. 17):  p̂→ = (Tb_i − Tb_j) / (Ta_i − Ta_j)
///   backward        :   p̂← = (Te_i − Te_j) / (Tf_i − Tf_j)
/// and their average, the form used throughout §5.2.
struct NaiveRate {
  double forward = 0;
  double backward = 0;
  double combined = 0;
};

NaiveRate naive_rate(const RawExchange& earlier, const RawExchange& later);

/// Naive per-packet offset (eq. 19):
///   θ̂_i = ½(C(Ta_i) + C(Tf_i)) − ½(Tb_i + Te_i)
/// which implicitly assumes a symmetric path (Δ = 0). Inline: evaluated once
/// per offset-window entry per packet, the hottest loop in the estimator.
inline Seconds naive_offset(const RawExchange& exchange,
                            const CounterTimescale& clock) {
  const Seconds host_mid =
      0.5 * (clock.read(exchange.ta) + clock.read(exchange.tf));
  const Seconds server_mid = 0.5 * (exchange.tb + exchange.te);
  return host_mid - server_mid;
}

}  // namespace tscclock::core
