#include "core/level_shift.hpp"

#include "common/contracts.hpp"

namespace tscclock::core {

LevelShiftDetector::LevelShiftDetector(const Params& params)
    : params_(params) {
  params.validate();
}

std::optional<LevelShiftDetector::Event> LevelShiftDetector::check(
    RttFilter& filter, double period, std::uint64_t seq) {
  TSC_EXPECTS(period > 0.0);
  if (!filter.valid()) return std::nullopt;

  const TscDelta rhat = filter.rhat();
  const auto threshold_counts = static_cast<TscDelta>(
      params_.shift_detect_factor * params_.offset_quality / period);

  std::optional<Event> event;

  // Upward: the whole Ts window floats above r̂ by more than 4E.
  if (params_.enable_level_shift && filter.local_min_full()) {
    const TscDelta local = filter.local_min();
    if (local - rhat > threshold_counts) {
      Event ev;
      ev.upward = true;
      ev.old_rhat = rhat;
      ev.new_rhat = local;
      ev.detect_seq = seq;
      const std::size_t ts_packets = params_.packets(params_.shift_window);
      ev.shift_seq = seq >= ts_packets ? seq - ts_packets : 0;
      filter.force_rhat(local);
      ++upshifts_;
      last_upshift_seq_ = ev.shift_seq;
      event = ev;
    }
  }

  // Downward: the running minimum dropped by more than the threshold since
  // the previous packet. Reaction is inherent in the running minimum; the
  // event is reported for observability.
  if (!event && have_last_ && last_rhat_ - rhat > threshold_counts) {
    Event ev;
    ev.upward = false;
    ev.old_rhat = last_rhat_;
    ev.new_rhat = rhat;
    ev.detect_seq = seq;
    ev.shift_seq = seq;
    ++downshifts_;
    event = ev;
  }

  last_rhat_ = filter.rhat();
  have_last_ = true;
  return event;
}

}  // namespace tscclock::core
