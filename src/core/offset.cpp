#include "core/offset.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "core/naive.hpp"

namespace tscclock::core {

OffsetEstimator::OffsetEstimator(const Params& params)
    : params_(params), window_(params.packets(params.offset_window)) {
  params.validate();
}

Seconds OffsetEstimator::estimate() const {
  TSC_EXPECTS(has_reported_);
  return reported_value_;
}

void OffsetEstimator::reassess_errors(TscDelta new_rhat_counts,
                                      std::uint64_t from_seq) {
  for (std::size_t k = 0; k < window_.size(); ++k) {
    auto& rec = window_[k];
    if (rec.seq >= from_seq) {
      rec.error_counts = rec.rtt - new_rhat_counts;
      if (rec.error_counts < 0) rec.error_counts = 0;
    }
  }
}

void OffsetEstimator::degrade_window(double period) {
  TSC_EXPECTS(period > 0.0);
  const auto poor = static_cast<TscDelta>(
      2.0 * params_.extreme_quality() / period);
  for (std::size_t k = 0; k < window_.size(); ++k)
    window_[k].error_counts = std::max(window_[k].error_counts, poor);
}

OffsetEvaluation OffsetEstimator::process(const PacketRecord& packet,
                                          const CounterTimescale& clock,
                                          double gamma_local,
                                          bool gap_detected, bool in_warmup) {
  OffsetEvaluation eval;
  window_.push_back(packet);

  const double period = clock.period();
  const Seconds quality_scale =
      params_.offset_quality *
      (in_warmup ? params_.warmup_quality_inflation : 1.0);

  // Stages (i)-(iii): total errors, weights, weighted combination.
  double weight_sum = 0;
  double weighted_offset = 0;
  for (std::size_t k = 0; k < window_.size(); ++k) {
    const auto& rec = window_[k];
    const Seconds age = clock.between(rec.stamps.tf, packet.stamps.tf);
    const Seconds point_error =
        delta_to_seconds(rec.error_counts, period);
    const Seconds total_error =
        point_error + (params_.enable_aging ? params_.aging_rate * age : 0.0);
    if (total_error < eval.min_total_error) eval.min_total_error = total_error;

    const double z = total_error / quality_scale;
    const double w = std::exp(-z * z);
    const Seconds theta_i = naive_offset(rec.stamps, clock);
    weight_sum += w;
    weighted_offset += w * (theta_i - gamma_local * age);
  }
  eval.weight_sum = weight_sum;

  const bool quality_ok =
      eval.min_total_error <= params_.extreme_quality() && weight_sum > 0.0;

  const Seconds theta_new = naive_offset(packet.stamps, clock);

  if (!has_measured_) {
    // First estimate: directly from the first packet (§6.1 warm-up).
    eval.candidate = theta_new;
    eval.weighted = true;
    measured_value_ = eval.candidate;
    measured_tf_ = packet.stamps.tf;
    measured_quality_ = delta_to_seconds(packet.error_counts, period);
    has_measured_ = true;
    reported_value_ = eval.candidate;
    has_reported_ = true;
    eval.estimate = eval.candidate;
    return eval;
  }

  const Seconds age_since_measured =
      clock.between(measured_tf_, packet.stamps.tf);
  const Seconds predicted =
      measured_value_ - gamma_local * age_since_measured;  // eq. (23)/(22)

  if (params_.enable_weighting && quality_ok) {
    eval.candidate = weighted_offset / weight_sum;
    eval.weighted = true;
  } else if (gap_detected) {
    // §6.1: after a long gap with a poor window, blend the fresh naive
    // estimate with the aged previous estimate, each weighted by quality.
    const Seconds e_new = delta_to_seconds(packet.error_counts, period);
    const Seconds e_old =
        measured_quality_ + params_.aging_rate * age_since_measured;
    const double zn = e_new / quality_scale;
    const double zo = e_old / quality_scale;
    const double wn = std::exp(-zn * zn);
    const double wo = std::exp(-zo * zo);
    eval.candidate = (wn + wo > 0.0)
                         ? (wn * theta_new + wo * predicted) / (wn + wo)
                         : (e_new < e_old ? theta_new : predicted);
    eval.gap_blend = true;
    ++gap_blend_count_;
  } else {
    eval.candidate = predicted;
    eval.fallback = true;
    ++fallback_count_;
  }

  // Stage (iv): sanity check against the last reported value. Not applied
  // to the gap blend, whose own weighting is the guard (otherwise a long
  // outage could lock the estimate out permanently), nor during warm-up,
  // where the period estimate legitimately moves by tens of PPM and the
  // clock's offset moves with it (at a 256 s poll the first p̂ correction
  // shifts C by ~13 ms — freezing on that would lock the clock out forever).
  // Lock-out escape: if every candidate for a sustained stretch (twice the
  // window by default) has been rejected AND the rejected candidates agree
  // with each other, the frozen value is the suspect, not the data —
  // accept and move on. The stability requirement matters: while a fault
  // washes out of the window the candidates still *move* packet-to-packet
  // (each clean arrival shifts the weighted mixture), so the escape waits;
  // a genuine "world moved" situation produces stable candidates. This
  // makes the §5.3 warning about "lock-out, where an old estimate is
  // duplicated ad infinitum" structurally impossible while still containing
  // faults of any duration.
  //
  // The check is also skipped on gap packets: across a long gap the clock
  // drifted unobserved, so insisting on a ≤ Es move would freeze on the
  // stale level (the blend/weighted recovery is the guard there).
  Seconds result = eval.candidate;
  if (params_.enable_offset_sanity && !eval.gap_blend && !gap_detected &&
      !in_warmup &&
      std::fabs(eval.candidate - reported_value_) > params_.offset_sanity) {
    const bool stable =
        std::fabs(eval.candidate - last_blocked_candidate_) <=
        params_.offset_sanity;
    last_blocked_candidate_ = eval.candidate;
    consecutive_sanity_ = stable ? consecutive_sanity_ + 1 : 0;
    if (consecutive_sanity_ < params_.offset_sanity_release()) {
      result = reported_value_;  // duplicate the most recent trusted value
      eval.sanity_triggered = true;
      ++sanity_count_;
    } else {
      eval.sanity_released = true;
      ++release_count_;
      consecutive_sanity_ = 0;
    }
  } else {
    consecutive_sanity_ = 0;
  }

  if (!eval.sanity_triggered && (eval.weighted || eval.gap_blend)) {
    measured_value_ = result;
    measured_tf_ = packet.stamps.tf;
    measured_quality_ = eval.min_total_error;
  }
  reported_value_ = result;
  has_reported_ = true;
  eval.estimate = result;
  return eval;
}

}  // namespace tscclock::core
