// Robust global rate synchronization p̄ (paper §5.2) with the warm-up
// behaviour of §6.1.
//
// Principle: restrict eq. (17) to packets whose point error is below E*,
// and let the baseline Δ(t) = Tf_i − Tf_j grow so the bounded per-packet
// errors are damped as 1/Δ(t). The estimated relative error of the current
// estimate is (E_i + E_j)/((Tf_i − Tf_j)·p̄), bounded by 2E*/Δ(t).
//
// Robustness: even if every subsequent packet is rejected (congestion,
// outage, server loss), the current p̂ remains valid — estimation can resume
// at any time with no warm-up, because the scheme has no feedback state.
//
// Warm-up (§6.1): before the RTT filter has enough samples for point errors
// to be trusted, a local-rate-type algorithm is used — the best-quality
// packets in growing near/far windows (initial width 1, growing as Δ/4) are
// paired. The first estimate is simply the naive p̂_{2,1}.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/time_types.hpp"
#include "core/params.hpp"
#include "core/records.hpp"

namespace tscclock::core {

class GlobalRateEstimator {
 public:
  /// `initial_period` is the spec-sheet (nominal) period guess used before
  /// the first measured estimate exists.
  GlobalRateEstimator(const Params& params, double initial_period);

  struct Result {
    bool accepted = false;  ///< point error below E* (post-warm-up)
    bool updated = false;   ///< p̂ changed
    bool sanity_released = false;  ///< lock-out escape fired (large change
                                   ///< accepted after persistent blocking)
  };

  /// Process a non-lost packet with its point error (seconds).
  Result process(const PacketRecord& packet, Seconds point_error);

  /// Current period estimate p̂ [s/count].
  [[nodiscard]] double period() const { return period_; }

  /// Estimated bound on the relative error of p̂ (∞ until measurable).
  [[nodiscard]] double quality() const { return quality_; }

  [[nodiscard]] bool warmed_up() const { return !in_warmup_; }

  /// Packets accepted by the E* test since warm-up completed.
  [[nodiscard]] std::uint64_t accepted_count() const { return accepted_; }

  /// Accepted candidates rejected by the rate sanity check (e.g. poisoned
  /// by faulty server timestamps that the RTT filter cannot see).
  [[nodiscard]] std::uint64_t sanity_count() const { return sanity_blocks_; }

  /// Times the lock-out escape accepted a persistent large change.
  [[nodiscard]] std::uint64_t release_count() const { return sanity_releases_; }

  /// The current anchor pair (j = anchor, i = latest), when available.
  [[nodiscard]] const std::optional<PacketRecord>& anchor() const {
    return anchor_;
  }
  [[nodiscard]] const std::optional<PacketRecord>& latest() const {
    return latest_;
  }

  /// Top-window update (§6.1): the anchor j has left the window; `candidate`
  /// is the best-quality packet of the retained half. The estimate value is
  /// replaced only if the new pair's quality beats the current quality.
  void replace_anchor(const PacketRecord& candidate, Seconds candidate_error);

 private:
  void warmup_process(const PacketRecord& packet, Seconds point_error);
  void finish_warmup();
  [[nodiscard]] double pair_quality(const PacketRecord& j, Seconds ej,
                                    const PacketRecord& i, Seconds ei) const;

  Params params_;
  double period_;
  double quality_ = 1.0;  ///< relative error bound; 1.0 = unknown
  bool in_warmup_ = true;
  std::uint64_t accepted_ = 0;
  std::uint64_t sanity_blocks_ = 0;
  std::uint64_t sanity_releases_ = 0;
  std::size_t consecutive_blocks_ = 0;

  struct WarmupEntry {
    PacketRecord packet;
    Seconds error = 0;
  };
  std::vector<WarmupEntry> warmup_;  ///< packets seen during warm-up

  std::optional<PacketRecord> anchor_;  ///< packet j
  Seconds anchor_error_ = 0;
  std::optional<PacketRecord> latest_;  ///< packet i
  Seconds latest_error_ = 0;
};

}  // namespace tscclock::core
