#include "core/server_change.hpp"

namespace tscclock::core {

std::optional<ServerChangeDetector::Change> ServerChangeDetector::observe(
    const ServerIdentity& identity, std::uint64_t packet_index) {
  if (!has_identity_) {
    current_ = identity;
    has_identity_ = true;
    return std::nullopt;
  }
  if (identity == current_) return std::nullopt;
  Change change;
  change.previous = current_;
  change.current = identity;
  change.packet_index = packet_index;
  current_ = identity;
  ++changes_;
  return change;
}

}  // namespace tscclock::core
