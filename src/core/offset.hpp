// Robust offset synchronization θ̂(t) (paper §5.3, with the §6.1 additions).
//
// Four stages per packet (evaluated at packet arrival times):
//  (i)   total error: E^T_i = E_i + ε·(Cd(t) − Cd(Tf_i)) — the RTT point
//        error inflated by the age of the packet at the residual-rate ε;
//  (ii)  quality weight: w_i = exp(−(E^T_i/E)²) over packets inside the
//        SKM-related window τ';
//  (iii) estimate: θ̂(t) = Σ w_i (θ̂_i − γ̂_l·age_i) / Σ w_i — a weighted
//        combination of per-packet naive offsets, with optional local-rate
//        linear prediction (eq. 21; γ̂_l = 0 reduces to eq. 20).
//        If even the best packet is very poor (min E^T > E** = 6E) the last
//        estimate is reused, slope-corrected when a local rate is available
//        (eq. 22/23);
//  (iv)  sanity check: successive estimates may not differ by more than
//        Es = 1 ms — orders of magnitude beyond what the hardware can do —
//        otherwise the most recent trusted value is duplicated.
//
// Gap handling (§6.1): when a long gap (> τ̄/2) has starved the window and
// quality is poor, the new naive estimate is blended with the aged previous
// estimate, weighting each by its own quality, so recovery is immediate but
// still guarded.
//
// Per-packet naive offsets are recomputed from the stored timestamps with
// the *current* clock on every evaluation, so the level-shift reaction
// ("recalculate θ̂_i values … back to the shift point") and clock-continuity
// rule are honoured automatically.
#pragma once

#include <cstdint>
#include <limits>

#include "common/ring_buffer.hpp"
#include "common/time_types.hpp"
#include "core/params.hpp"
#include "core/records.hpp"

namespace tscclock::core {

struct OffsetEvaluation {
  Seconds estimate = 0;   ///< reported θ̂(t) (post sanity check)
  Seconds candidate = 0;  ///< pre-sanity candidate
  bool weighted = false;  ///< stage (iii) weighted sum was used
  bool fallback = false;  ///< eq. (22)/(23) reuse of the last estimate
  bool gap_blend = false; ///< §6.1 gap recovery blend was used
  bool sanity_triggered = false;
  bool sanity_released = false;  ///< lock-out escape accepted the candidate
  Seconds min_total_error = std::numeric_limits<double>::infinity();
  double weight_sum = 0;
};

class OffsetEstimator {
 public:
  explicit OffsetEstimator(const Params& params);

  /// Evaluate at the arrival of `packet` (already point-error-assessed).
  /// `gamma_local` is γ̂_l (0 disables linear prediction); `gap_detected`
  /// reports a pre-packet gap > τ̄/2; `in_warmup` inflates E.
  OffsetEvaluation process(const PacketRecord& packet,
                           const CounterTimescale& clock, double gamma_local,
                           bool gap_detected, bool in_warmup);

  [[nodiscard]] bool has_estimate() const { return has_reported_; }
  [[nodiscard]] Seconds estimate() const;

  /// Level-shift reaction (§6.2): re-assess stored point errors against the
  /// new minimum for every window packet with seq >= from_seq.
  void reassess_errors(TscDelta new_rhat_counts, std::uint64_t from_seq);

  /// Server-change reaction: the retained packets' quality assessments
  /// refer to the previous path and do not transfer — mark them all poor
  /// (beyond E**) so fresh packets dominate while fallback continuity is
  /// preserved. `period` converts the quality scale to counts.
  void degrade_window(double period);

  [[nodiscard]] std::uint64_t sanity_count() const { return sanity_count_; }
  [[nodiscard]] std::uint64_t fallback_count() const { return fallback_count_; }
  [[nodiscard]] std::uint64_t gap_blend_count() const { return gap_blend_count_; }
  [[nodiscard]] std::uint64_t release_count() const { return release_count_; }

 private:
  Params params_;
  RingBuffer<PacketRecord> window_;

  // Last *measured* estimate (weighted / blend / first): basis of fallback
  // extrapolation and of the aged weight in the gap blend.
  bool has_measured_ = false;
  Seconds measured_value_ = 0;
  TscCount measured_tf_ = 0;
  Seconds measured_quality_ = 0;  ///< E^T of the estimate when made

  // Last reported estimate: basis of the sanity comparison.
  bool has_reported_ = false;
  Seconds reported_value_ = 0;

  std::uint64_t sanity_count_ = 0;
  std::uint64_t fallback_count_ = 0;
  std::uint64_t gap_blend_count_ = 0;
  std::uint64_t release_count_ = 0;
  std::size_t consecutive_sanity_ = 0;
  Seconds last_blocked_candidate_ = 0;
};

}  // namespace tscclock::core
