// TscNtpClock: the complete on-line synchronization system (paper §6),
// composing the RTT filter, global/local rate estimators, offset estimator,
// level-shift detector and top-level window into the two clocks the paper
// defines:
//
//   difference clock  Cd(t) = TSC(t)·p̂(t)            — for time intervals
//   absolute clock    Ca(t) = C(t) − θ̂(t)            — for absolute time
//
// Feed each completed NTP exchange through process_exchange(); read either
// clock at any raw counter value at any time. The clock never steps: p̂
// updates preserve continuity of C(t) (§6.1 "Clock Offset Consistency") and
// offset corrections live only in Ca.
//
// Robustness behaviours built in: warm-up (§6.1), packet loss and gap
// recovery, congestion rejection, level shifts (§6.2), sanity checks
// against faulty server data, and bounded per-packet history.
#pragma once

#include <cstdint>
#include <optional>

#include "common/time_types.hpp"
#include "core/level_shift.hpp"
#include "core/local_rate.hpp"
#include "core/offset.hpp"
#include "core/params.hpp"
#include "core/point_error.hpp"
#include "core/rate.hpp"
#include "core/records.hpp"
#include "core/window.hpp"

namespace tscclock::core {

/// Aggregate view of the synchronization state, for monitoring and tests.
struct ClockStatus {
  std::uint64_t packets_processed = 0;
  std::uint64_t rate_accepted = 0;
  std::uint64_t offset_sanity_triggers = 0;
  std::uint64_t offset_fallbacks = 0;
  std::uint64_t gap_blends = 0;
  std::uint64_t local_rate_sanity_blocks = 0;
  std::uint64_t rate_sanity_blocks = 0;
  std::uint64_t rate_sanity_releases = 0;
  std::uint64_t offset_sanity_releases = 0;
  std::uint64_t upshifts = 0;
  std::uint64_t downshifts = 0;
  std::uint64_t top_window_updates = 0;
  std::uint64_t server_changes = 0;
  bool warmed_up = false;
  double period = 0;           ///< p̂ [s/count]
  double period_quality = 1;   ///< bound on relative error of p̂
  bool local_rate_usable = false;
  double local_rate_residual = 0;  ///< γ̂_l (dimensionless)
  Seconds offset = 0;              ///< current θ̂
  Seconds min_rtt = 0;             ///< r̂ in seconds
};

/// What happened while processing one exchange.
struct ProcessReport {
  Seconds point_error = 0;      ///< E_i of this packet
  Seconds naive_offset = 0;     ///< θ̂_i of this packet
  Seconds offset_estimate = 0;  ///< θ̂(t) after this packet
  bool rate_accepted = false;
  bool rate_updated = false;
  bool offset_weighted = false;
  bool offset_fallback = false;
  bool gap_blend = false;
  bool sanity_triggered = false;
  bool offset_sanity_released = false;
  bool rate_sanity_released = false;
  bool gap_detected = false;
  std::optional<LevelShiftDetector::Event> shift;
};

class TscNtpClock {
 public:
  /// `nominal_period` is the configured spec-sheet period [s/count] used
  /// until measurements replace it (its error is tens of PPM; harmless).
  TscNtpClock(const Params& params, double nominal_period);

  /// Process one completed exchange. Timestamps must be causally ordered
  /// (tf > ta) and later than any previously processed exchange.
  ProcessReport process_exchange(const RawExchange& exchange);

  /// React to a server change detected at the packet layer (see
  /// ServerChangeDetector): the RTT filter restarts (the new path's minimum
  /// is unrelated to the old one) and the retained offset window is
  /// deweighted. Rate state is kept — the oscillator did not change, and
  /// stratum-1 stamps share the timescale.
  void notify_server_change();

  // -- Clock reads ---------------------------------------------------------
  /// Uncorrected clock C(T) (absolute origin aligned at the first packet).
  [[nodiscard]] Seconds uncorrected_time(TscCount count) const;
  /// Absolute clock Ca(T) = C(T) − θ̂ extrapolated per eq. (23).
  [[nodiscard]] Seconds absolute_time(TscCount count) const;
  /// Difference clock: Cd(T2) − Cd(T1) under the current p̂.
  [[nodiscard]] Seconds difference(TscCount earlier, TscCount later) const;

  // -- State ---------------------------------------------------------------
  [[nodiscard]] const CounterTimescale& timescale() const { return timescale_; }
  [[nodiscard]] double period() const { return rate_.period(); }
  /// The warm-up flag alone (identical to status().warmed_up, without
  /// assembling the full counter snapshot — the drive loop reads this once
  /// per exchange).
  [[nodiscard]] bool warmed_up() const { return rate_.warmed_up(); }
  [[nodiscard]] bool has_estimate() const { return offset_.has_estimate(); }
  [[nodiscard]] Seconds offset_estimate() const { return offset_.estimate(); }
  [[nodiscard]] ClockStatus status() const;
  [[nodiscard]] const Params& params() const { return params_; }

 private:
  Params params_;
  CounterTimescale timescale_;
  RttFilter filter_;
  GlobalRateEstimator rate_;
  LocalRateEstimator local_rate_;
  OffsetEstimator offset_;
  LevelShiftDetector shifts_;
  TopWindow top_window_;

  bool initialized_ = false;
  std::uint64_t seq_ = 0;
  TscCount prev_tf_ = 0;
  std::uint64_t server_changes_ = 0;

  // Absolute-clock correction state (θ̂ anchored at its evaluation instant).
  Seconds current_offset_ = 0;
  TscCount offset_anchor_ = 0;
  double offset_slope_ = 0;  ///< γ̂_l used for extrapolation
};

}  // namespace tscclock::core
