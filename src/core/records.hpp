// Data records flowing through the synchronization pipeline.
#pragma once

#include <cstdint>

#include "common/time_types.hpp"

namespace tscclock::core {

/// One completed NTP exchange as the algorithm sees it: two host TSC stamps
/// (raw counter values) and two server stamps (seconds). This is the
/// {Ta, Tb, Te, Tf} quadruple of paper Fig. 1.
struct RawExchange {
  TscCount ta = 0;  ///< host TSC just before send
  Seconds tb = 0;   ///< server receive stamp
  Seconds te = 0;   ///< server transmit stamp
  TscCount tf = 0;  ///< host TSC after full arrival

  /// Host-measured round-trip time in counter units (single-clock quantity;
  /// needs no synchronization to be meaningful — §5.1).
  [[nodiscard]] TscDelta rtt_counts() const { return counter_delta(tf, ta); }

  /// Server-side processing interval d↑ measured by the server clock.
  [[nodiscard]] Seconds server_delay() const { return te - tb; }
};

/// Per-packet record retained inside the estimator windows.
struct PacketRecord {
  std::uint64_t seq = 0;  ///< index among non-lost packets
  RawExchange stamps;
  TscDelta rtt = 0;           ///< cached stamps.rtt_counts()
  TscDelta error_counts = 0;  ///< rtt − r̂ at assessment time (re-assessable)
};

}  // namespace tscclock::core
