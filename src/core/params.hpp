// Every algorithm constant of the paper, with the paper's defaults.
//
// Windows are nominally time intervals but are maintained as packet counts
// (nominal interval / polling period), exactly as §6.1 "Lost Packets"
// prescribes: loss rates are low, so the drift in time-scale control is
// negligible and the bookkeeping is greatly simplified.
#pragma once

#include <cstddef>

#include "common/contracts.hpp"
#include "common/time_types.hpp"

namespace tscclock::core {

struct Params {
  // -- Hardware abstraction (paper §3.1) ---------------------------------
  /// Maximum host timestamping error δ; the calibration unit for all
  /// quality thresholds.
  Seconds delta = 15e-6;
  /// SKM scale τ*: the simple skew model holds below this time-scale.
  Seconds skm_scale = 1000.0;
  /// Bound on the rate error over all time-scales (0.1 PPM).
  double rate_error_bound = ppm(0.1);
  /// Achievable local rate accuracy ̺ (the Allan-minimum, ~0.01 PPM).
  double local_rate_accuracy = ppm(0.01);

  // -- Global rate synchronization p̄ (§5.2) ------------------------------
  /// Point-error acceptance threshold E* (default 20δ = 0.3 ms).
  Seconds rate_accept_error = 20 * 15e-6;

  // -- Local rate synchronization p̂_l (§5.2) -----------------------------
  /// Local rate window τ̄ (default 5τ*).
  Seconds local_rate_window = 5 * 1000.0;
  /// Number of sub-windows W (near = τ̄/W, far = 2τ̄/W).
  std::size_t local_rate_subwindows = 30;
  /// Target quality γ* for accepting a local rate candidate (0.05 PPM).
  double local_rate_quality = ppm(0.05);
  /// Sanity bound on the relative change between successive local rate
  /// estimates (3×10⁻⁷, a multiple of the 0.1 PPM hardware bound).
  double rate_sanity_threshold = 3e-7;
  /// Lock-out escape for the global-rate sanity check: after this many
  /// *consecutive* blocked candidates, the candidate is accepted — the
  /// world has persistently disagreed with the current estimate, so the
  /// estimate is the suspect. Keeps transient server faults out while
  /// making permanent lock-out (the danger §5.3 warns about) impossible.
  std::size_t rate_sanity_release_count = 8;

  // -- Offset synchronization θ̂(t) (§5.3) --------------------------------
  /// SKM-related weighting window τ' (default τ*).
  Seconds offset_window = 1000.0;
  /// Quality scale E of the Gaussian weight (default 4δ = 60 µs).
  Seconds offset_quality = 4 * 15e-6;
  /// Point-error aging rate ε applied in the total error E^T (0.02 PPM).
  double aging_rate = ppm(0.02);
  /// Extreme-quality cutoff E** as a multiple of E (default 6).
  double extreme_quality_factor = 6.0;
  /// Offset sanity threshold Es between successive estimates (1 ms).
  Seconds offset_sanity = 1e-3;
  /// Lock-out escape for the offset sanity check, in consecutive triggers;
  /// 0 = automatic (twice the offset window, so genuine multi-minute
  /// server faults stay contained but nothing can be frozen forever).
  std::size_t offset_sanity_release_count = 0;

  [[nodiscard]] std::size_t offset_sanity_release() const {
    return offset_sanity_release_count != 0 ? offset_sanity_release_count
                                            : 2 * packets(offset_window);
  }

  // -- Level shifts (§6.2) ------------------------------------------------
  /// Upward shift detection threshold, as a multiple of E (default 4).
  double shift_detect_factor = 4.0;
  /// Level-shift window Ts (default τ̄/2).
  Seconds shift_window = 5 * 1000.0 / 2;

  // -- System-level (§6.1) ------------------------------------------------
  /// Nominal polling period (windows are converted to packet counts by it).
  Seconds poll_period = 16.0;
  /// Top-level sliding window T (default 1 week), updated every T/2.
  Seconds top_window = duration::kWeek;
  /// Warm-up length Tw in accepted RTT samples.
  std::size_t warmup_samples = 64;
  /// During warm-up the offset quality scale E is inflated by this factor.
  double warmup_quality_inflation = 3.0;
  /// Gap threshold after which the local rate is deemed stale (τ̄/2).
  Seconds gap_threshold = 5 * 1000.0 / 2;

  // -- Feature toggles (ablation studies) ---------------------------------
  bool use_local_rate = true;       ///< eq. (21)/(23) linear prediction
  bool enable_offset_sanity = true; ///< stage (iv) of §5.3
  bool enable_rate_sanity = true;   ///< local-rate sanity check
  bool enable_aging = true;         ///< ε-aging in E^T
  bool enable_level_shift = true;   ///< §6.2 upward-shift detection
  bool enable_weighting = true;     ///< false: last-good-packet estimate only

  // -- Derived helpers -----------------------------------------------------
  /// Convert a nominal window duration to a packet count (at least 1).
  [[nodiscard]] std::size_t packets(Seconds interval) const {
    TSC_EXPECTS(poll_period > 0.0);
    const auto n = static_cast<std::size_t>(interval / poll_period);
    return n > 0 ? n : 1;
  }

  [[nodiscard]] Seconds extreme_quality() const {
    return extreme_quality_factor * offset_quality;
  }

  /// Defaults re-derived for a different polling period, keeping windows
  /// fixed in *time* (the paper's Fig. 9(c) sweep).
  [[nodiscard]] static Params for_poll_period(Seconds poll) {
    Params p;
    p.poll_period = poll;
    return p;
  }

  /// Validate cross-field consistency; throws ContractViolation.
  void validate() const {
    TSC_EXPECTS(delta > 0.0);
    TSC_EXPECTS(skm_scale > 0.0);
    TSC_EXPECTS(rate_accept_error > 0.0);
    TSC_EXPECTS(local_rate_window > 0.0);
    TSC_EXPECTS(local_rate_subwindows >= 3);
    TSC_EXPECTS(local_rate_quality > 0.0);
    TSC_EXPECTS(offset_window > 0.0);
    TSC_EXPECTS(offset_quality > 0.0);
    TSC_EXPECTS(extreme_quality_factor > 1.0);
    TSC_EXPECTS(offset_sanity > 0.0);
    TSC_EXPECTS(rate_sanity_release_count >= 2);
    TSC_EXPECTS(poll_period > 0.0);
    TSC_EXPECTS(top_window >= local_rate_window);
    TSC_EXPECTS(warmup_samples >= 2);
  }
};

}  // namespace tscclock::core
