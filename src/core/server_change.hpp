// Server-identity tracking (paper §2.3: the NTP payload carries "server
// identity information which we plan to use as part of route change (level
// shift) detection in the future" — this implements that plan).
//
// Every NTP reply carries the server's reference id and stratum. A change
// means the minimum RTT level, the path asymmetry and the quality history
// all refer to a different physical path: the RTT filter must restart and
// the retained offset window must be deweighted (its naive offsets remain
// valid — stratum-1 servers share the timescale — but their quality
// assessments do not transfer).
//
// The detector is deliberately separate from TscNtpClock: identity lives in
// the packet layer, and deployments that pin a single server never pay for
// it. Feed each reply's identity; on a change, call
// TscNtpClock::notify_server_change().
#pragma once

#include <cstdint>
#include <optional>

namespace tscclock::core {

struct ServerIdentity {
  std::uint32_t reference_id = 0;  ///< e.g. "GPS "/"ATOM" for stratum-1
  std::uint8_t stratum = 0;

  friend bool operator==(const ServerIdentity&, const ServerIdentity&) =
      default;
};

class ServerChangeDetector {
 public:
  struct Change {
    ServerIdentity previous;
    ServerIdentity current;
    std::uint64_t packet_index = 0;
  };

  /// Observe the identity carried by reply number `packet_index`.
  /// Returns the change descriptor when the identity differs from the
  /// previous reply's.
  std::optional<Change> observe(const ServerIdentity& identity,
                                std::uint64_t packet_index);

  [[nodiscard]] bool has_identity() const { return has_identity_; }
  [[nodiscard]] const ServerIdentity& current() const { return current_; }
  [[nodiscard]] std::uint64_t changes() const { return changes_; }

 private:
  bool has_identity_ = false;
  ServerIdentity current_;
  std::uint64_t changes_ = 0;
};

}  // namespace tscclock::core
