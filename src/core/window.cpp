#include "core/window.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace tscclock::core {

TopWindow::TopWindow(const Params& params) : params_(params), history_(0) {
  params.validate();
}

TopWindow::Update TopWindow::add(const PacketRecord& packet,
                                 std::uint64_t min_valid_seq) {
  Update update;
  history_.push_back(packet);
  // Maintain the suffix-minimum deque: pop dominated entries (later packet,
  // <= rtt supersedes them for every suffix), append the new packet.
  while (!suffix_min_.empty() && suffix_min_.back().rtt >= packet.rtt)
    suffix_min_.pop_back();
  suffix_min_.push_back({packet.seq, packet.rtt});
  if (history_.size() < params_.packets(params_.top_window)) return update;

  // Window full: discard the oldest half, recompute over the retained half.
  history_.drop_front(history_.size() / 2);
  ++updates_;
  update.triggered = true;
  update.oldest_seq = history_.front().seq;
  while (suffix_min_.front().seq < update.oldest_seq) suffix_min_.pop_front();

  // New r̂: minimum over retained packets beyond the last shift point; if
  // none qualify (shift point very recent), fall back to all retained. Both
  // minima are answered by the suffix-min deque instead of rescanning the
  // retained half: the restricted minimum is the first entry with
  // seq >= min_valid_seq, the all-retained fallback is the front entry. A
  // minimum VALUE is tie-insensitive, so this is bit-identical to the former
  // strict-less scans.
  const auto it = std::lower_bound(
      suffix_min_.begin(), suffix_min_.end(), min_valid_seq,
      [](const SuffixMin& e, std::uint64_t s) { return e.seq < s; });
  TSC_ENSURES(!suffix_min_.empty());  // the just-added packet is retained
  update.new_rhat =
      it != suffix_min_.end() ? it->rtt : suffix_min_.front().rtt;
  const TscDelta min_rtt = update.new_rhat;

  // Anchor replacement candidate: the best-quality packet among the oldest
  // quarter of the retained window (early packets preserve a long Δ(t)).
  const std::size_t quarter = std::max<std::size_t>(1, history_.size() / 4);
  std::size_t best = 0;
  for (std::size_t k = 1; k < quarter; ++k)
    if (history_[k].rtt < history_[best].rtt) best = k;
  update.anchor_candidate = history_[best];
  update.anchor_error_counts = history_[best].rtt - min_rtt;
  if (update.anchor_error_counts < 0) update.anchor_error_counts = 0;
  return update;
}

}  // namespace tscclock::core
