#include "core/window.hpp"

#include "common/contracts.hpp"

namespace tscclock::core {

TopWindow::TopWindow(const Params& params) : params_(params), history_(0) {
  params.validate();
}

TopWindow::Update TopWindow::add(const PacketRecord& packet,
                                 std::uint64_t min_valid_seq) {
  Update update;
  history_.push_back(packet);
  if (history_.size() < params_.packets(params_.top_window)) return update;

  // Window full: discard the oldest half, recompute over the retained half.
  history_.drop_front(history_.size() / 2);
  ++updates_;
  update.triggered = true;
  update.oldest_seq = history_.front().seq;

  // New r̂: minimum over retained packets beyond the last shift point; if
  // none qualify (shift point very recent), fall back to all retained. One
  // fused pass tracks both minima — each uses the same strict-less /
  // earliest-wins comparison as the former two sequential scans, so the
  // selected value is bit-identical.
  bool have_min = false;
  bool have_any = false;
  TscDelta min_rtt = 0;
  TscDelta min_rtt_any = 0;
  for (const auto& rec : history_) {
    if (!have_any || rec.rtt < min_rtt_any) {
      min_rtt_any = rec.rtt;
      have_any = true;
    }
    if (rec.seq < min_valid_seq) continue;
    if (!have_min || rec.rtt < min_rtt) {
      min_rtt = rec.rtt;
      have_min = true;
    }
  }
  if (!have_min) {
    min_rtt = min_rtt_any;
    have_min = have_any;
  }
  TSC_ENSURES(have_min);
  update.new_rhat = min_rtt;

  // Anchor replacement candidate: the best-quality packet among the oldest
  // quarter of the retained window (early packets preserve a long Δ(t)).
  const std::size_t quarter = std::max<std::size_t>(1, history_.size() / 4);
  std::size_t best = 0;
  for (std::size_t k = 1; k < quarter; ++k)
    if (history_[k].rtt < history_[best].rtt) best = k;
  update.anchor_candidate = history_[best];
  update.anchor_error_counts = history_[best].rtt - min_rtt;
  if (update.anchor_error_counts < 0) update.anchor_error_counts = 0;
  return update;
}

}  // namespace tscclock::core
