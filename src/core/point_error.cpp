#include "core/point_error.hpp"

#include "common/contracts.hpp"

namespace tscclock::core {

RttFilter::RttFilter(const Params& params)
    : local_min_(params.packets(params.shift_window)) {
  params.validate();
}

void RttFilter::add(TscDelta rtt_counts) {
  TSC_EXPECTS(rtt_counts > 0);
  global_min_.update(rtt_counts);
  local_min_.push(rtt_counts);
  ++samples_;
}

TscDelta RttFilter::rhat() const {
  TSC_EXPECTS(global_min_.valid());
  return global_min_.value();
}

TscDelta RttFilter::local_min() const {
  TSC_EXPECTS(local_min_.valid());
  return local_min_.min();
}

Seconds RttFilter::point_error(TscDelta rtt_counts, double period) const {
  TSC_EXPECTS(global_min_.valid());
  TSC_EXPECTS(period > 0.0);
  return delta_to_seconds(rtt_counts - global_min_.value(), period);
}

void RttFilter::force_rhat(TscDelta rhat_counts) {
  TSC_EXPECTS(rhat_counts > 0);
  global_min_.reset_to(rhat_counts);
}

void RttFilter::reset_local_window() { local_min_.clear(); }

void RttFilter::reset_all() {
  global_min_.reset();
  local_min_.clear();
}

}  // namespace tscclock::core
