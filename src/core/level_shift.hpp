// Level-shift detection and reaction (paper §6.2).
//
// A level shift is a step change in a minimum delay (route or server
// change). The two directions are fundamentally asymmetric:
//
//   Down: congestion can never *lower* delays, so a new RTT below r̂ is an
//         unambiguous downward shift → detection is automatic and immediate
//         through the running minimum; no reaction is needed.
//   Up:   indistinguishable from congestion at small scales → detected only
//         when the local minimum r̂_l over a large window Ts = τ̄/2 sits more
//         than 4E above r̂. Mis-detecting congestion as a shift corrupts
//         estimates, so the window is large and the threshold firm; an
//         undetected shift merely looks like congestion, which the
//         algorithms already tolerate.
//
// Reaction to an upward shift: r̂ ← r̂_l, and the stored point errors of
// packets back to the estimated shift point (Ts before detection) are
// re-assessed against the new minimum.
#pragma once

#include <cstdint>
#include <optional>

#include "common/time_types.hpp"
#include "core/params.hpp"
#include "core/point_error.hpp"

namespace tscclock::core {

class LevelShiftDetector {
 public:
  explicit LevelShiftDetector(const Params& params);

  struct Event {
    bool upward = false;
    TscDelta old_rhat = 0;
    TscDelta new_rhat = 0;
    std::uint64_t detect_seq = 0;  ///< packet at which detection fired
    std::uint64_t shift_seq = 0;   ///< estimated first post-shift packet
  };

  /// Inspect the filter state after its add() for packet `seq`.
  /// On an upward detection this *mutates* the filter (r̂ ← r̂_l).
  std::optional<Event> check(RttFilter& filter, double period,
                             std::uint64_t seq);

  [[nodiscard]] std::uint64_t upshift_count() const { return upshifts_; }
  [[nodiscard]] std::uint64_t downshift_count() const { return downshifts_; }

  /// Sequence number of the most recent detected upward shift point; the
  /// top-level window bases its minimum only on packets at or after this.
  [[nodiscard]] std::uint64_t last_upshift_seq() const {
    return last_upshift_seq_;
  }

 private:
  Params params_;
  bool have_last_ = false;
  TscDelta last_rhat_ = 0;
  std::uint64_t upshifts_ = 0;
  std::uint64_t downshifts_ = 0;
  std::uint64_t last_upshift_seq_ = 0;
};

}  // namespace tscclock::core
