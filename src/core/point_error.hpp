// RTT filtering: the quality basis of the whole synchronization system
// (paper §5.1).
//
// The round-trip time r_i = (Tf_i − Ta_i) is measured by a *single* clock
// (the raw counter), so it needs neither the unknown offset θ(t) nor an
// accurate rate to be meaningful — only a reasonable average period p̄ to
// express it in seconds. This decouples filtering from estimation and
// avoids feedback dynamics.
//
// The absolute point error of packet i is E_i = r_i − r̂(t) where
// r̂(t) = min_{k≤i} r_k. RTTs are kept in counter units throughout; point
// errors convert to seconds on demand with the current period estimate, so
// the §6.1 "re-evaluation of point errors" after a period or minimum update
// is implicit and exact.
//
// The filter also maintains the windowed local minimum r̂_l over the last
// Ts-worth of packets, the basis of upward level-shift detection (§6.2).
#pragma once

#include <cstddef>

#include "common/stats.hpp"
#include "common/time_types.hpp"
#include "core/params.hpp"

namespace tscclock::core {

class RttFilter {
 public:
  explicit RttFilter(const Params& params);

  /// Record the RTT of a new (non-lost) packet.
  void add(TscDelta rtt_counts);

  /// True once at least one RTT has been recorded.
  [[nodiscard]] bool valid() const { return global_min_.valid(); }

  /// The running minimum r̂ in counter units.
  [[nodiscard]] TscDelta rhat() const;

  /// The windowed local minimum r̂_l (valid once the Ts window has filled).
  [[nodiscard]] bool local_min_full() const { return local_min_.full(); }
  [[nodiscard]] bool local_min_valid() const { return local_min_.valid(); }
  [[nodiscard]] TscDelta local_min() const;

  /// Point error E_i = (rtt − r̂) · period [s].
  [[nodiscard]] Seconds point_error(TscDelta rtt_counts, double period) const;

  /// Number of RTT samples recorded (drives warm-up).
  [[nodiscard]] std::size_t samples() const { return samples_; }

  /// Force r̂ (level-shift reaction §6.2, top-window update §6.1).
  void force_rhat(TscDelta rhat_counts);

  /// Restart the local-minimum window (after an upward shift reaction).
  void reset_local_window();

  /// Forget everything (server change: the minimum level of the new path
  /// is unrelated to the old one). The sample counter is preserved so the
  /// warm-up bookkeeping of the surrounding system is unaffected.
  void reset_all();

 private:
  RunningMin<TscDelta> global_min_;
  WindowedMin<TscDelta> local_min_;
  std::size_t samples_ = 0;
};

}  // namespace tscclock::core
