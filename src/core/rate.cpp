#include "core/rate.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "core/naive.hpp"

namespace tscclock::core {

GlobalRateEstimator::GlobalRateEstimator(const Params& params,
                                         double initial_period)
    : params_(params), period_(initial_period) {
  params.validate();
  TSC_EXPECTS(initial_period > 0.0);
}

double GlobalRateEstimator::pair_quality(const PacketRecord& j, Seconds ej,
                                         const PacketRecord& i,
                                         Seconds ei) const {
  const Seconds span =
      delta_to_seconds(counter_delta(i.stamps.tf, j.stamps.tf), period_);
  TSC_EXPECTS(span > 0.0);
  return (ei + ej) / span;
}

void GlobalRateEstimator::warmup_process(const PacketRecord& packet,
                                         Seconds point_error) {
  warmup_.push_back({packet, point_error});
  const std::size_t n = warmup_.size();
  if (n < 2) return;

  // Growing near/far windows of width max(1, n/4); pick the best-quality
  // packet in each and pair them.
  const std::size_t w = std::max<std::size_t>(1, n / 4);
  const auto best_in = [&](std::size_t begin, std::size_t end) {
    std::size_t best = begin;
    for (std::size_t k = begin + 1; k < end; ++k)
      if (warmup_[k].error < warmup_[best].error) best = k;
    return best;
  };
  const std::size_t far = best_in(0, w);
  const std::size_t near = best_in(n - w, n);
  if (near == far) return;

  const auto& j = warmup_[far];
  const auto& i = warmup_[near];
  if (counter_delta(i.packet.stamps.ta, j.packet.stamps.ta) <= 0) return;
  period_ = naive_rate(j.packet.stamps, i.packet.stamps).combined;
  quality_ = pair_quality(j.packet, j.error, i.packet, i.error);
  anchor_ = j.packet;
  anchor_error_ = j.error;
  latest_ = i.packet;
  latest_error_ = i.error;

  if (n >= params_.warmup_samples) finish_warmup();
}

void GlobalRateEstimator::finish_warmup() {
  // Initialise the main algorithm: j = best packet of the first half,
  // i = best packet of the second half.
  const std::size_t n = warmup_.size();
  const std::size_t half = n / 2;
  const auto best_in = [&](std::size_t begin, std::size_t end) {
    std::size_t best = begin;
    for (std::size_t k = begin + 1; k < end; ++k)
      if (warmup_[k].error < warmup_[best].error) best = k;
    return best;
  };
  const std::size_t jdx = best_in(0, half);
  const std::size_t idx = best_in(half, n);
  const auto& j = warmup_[jdx];
  const auto& i = warmup_[idx];
  if (counter_delta(i.packet.stamps.ta, j.packet.stamps.ta) > 0) {
    period_ = naive_rate(j.packet.stamps, i.packet.stamps).combined;
    quality_ = pair_quality(j.packet, j.error, i.packet, i.error);
    anchor_ = j.packet;
    anchor_error_ = j.error;
    latest_ = i.packet;
    latest_error_ = i.error;
  }
  warmup_.clear();
  warmup_.shrink_to_fit();
  in_warmup_ = false;
}

GlobalRateEstimator::Result GlobalRateEstimator::process(
    const PacketRecord& packet, Seconds point_error) {
  TSC_EXPECTS(point_error >= 0.0);
  Result result;
  if (in_warmup_) {
    const double before = period_;
    warmup_process(packet, point_error);
    result.updated = period_ != before;
    return result;
  }

  if (point_error >= params_.rate_accept_error) return result;
  TSC_EXPECTS(anchor_.has_value());
  if (counter_delta(packet.stamps.ta, anchor_->stamps.ta) <= 0) return result;

  result.accepted = true;
  ++accepted_;
  const double candidate = naive_rate(anchor_->stamps, packet.stamps).combined;
  const double candidate_quality =
      pair_quality(*anchor_, anchor_error_, packet, point_error);

  // Sanity check (the §5.2 principle applied to p̄ as well): faulty server
  // stamps leave the RTT — and hence the E* filter — untouched, but can
  // poison the estimate by stamp-error/Δ(t) (a 150 ms fault at Δ = 2 h is
  // ~20 PPM). Reject candidates that move the estimate further than both
  // the hardware bound and the combined quality bounds can explain.
  //
  // Lock-out escape: if the current value itself was poisoned (e.g. the
  // warm-up pair caught a faulty stamp), every honest candidate would be
  // rejected forever. After `rate_sanity_release_count` *consecutive*
  // blocks, the candidate is accepted: persistent disagreement indicts the
  // held value, not the world.
  if (params_.enable_rate_sanity) {
    const double relative_change = std::fabs(candidate / period_ - 1.0);
    const double allowed = std::max(params_.rate_sanity_threshold,
                                    4.0 * (quality_ + candidate_quality));
    if (relative_change > allowed &&
        consecutive_blocks_ + 1 < params_.rate_sanity_release_count) {
      ++sanity_blocks_;
      ++consecutive_blocks_;
      return result;  // duplicate the previous value; keep the old pair
    }
    if (relative_change > allowed) {
      result.sanity_released = true;
      ++sanity_releases_;
    }
  }
  consecutive_blocks_ = 0;

  latest_ = packet;
  latest_error_ = point_error;
  const double before = period_;
  period_ = candidate;
  quality_ = candidate_quality;
  result.updated = period_ != before;
  return result;
}

void GlobalRateEstimator::replace_anchor(const PacketRecord& candidate,
                                         Seconds candidate_error) {
  if (in_warmup_ || !latest_.has_value()) return;
  if (counter_delta(latest_->stamps.ta, candidate.stamps.ta) <= 0) return;
  anchor_ = candidate;
  anchor_error_ = candidate_error;
  // Re-estimate with the new pair only if its quality beats the current one
  // (§6.1: "p̂(t) is updated if it exceeds the current quality").
  const double q =
      pair_quality(candidate, candidate_error, *latest_, latest_error_);
  if (q < quality_) {
    period_ = naive_rate(candidate.stamps, latest_->stamps).combined;
    quality_ = q;
  }
}

}  // namespace tscclock::core
