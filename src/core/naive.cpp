#include "core/naive.hpp"

#include "common/contracts.hpp"

namespace tscclock::core {

NaiveRate naive_rate(const RawExchange& earlier, const RawExchange& later) {
  const auto ta_span =
      static_cast<double>(counter_delta(later.ta, earlier.ta));
  const auto tf_span =
      static_cast<double>(counter_delta(later.tf, earlier.tf));
  TSC_EXPECTS(ta_span > 0.0);
  TSC_EXPECTS(tf_span > 0.0);
  NaiveRate r;
  r.forward = (later.tb - earlier.tb) / ta_span;
  r.backward = (later.te - earlier.te) / tf_span;
  r.combined = 0.5 * (r.forward + r.backward);
  return r;
}

}  // namespace tscclock::core
