// Quasi-local rate estimation p̂_l(t) (paper §5.2).
//
// Local rates refine the difference clock beyond the SKM scale and give the
// offset algorithm its linear-prediction term. The estimate at packet k uses
// a window of effective width τ̄ = 5τ* stretching back from t_f,k, split into
//   near   window: ages [0, τ̄/W)
//   central window: ages [τ̄/W, τ̄ − τ̄/W)
//   far    window: ages [τ̄ − τ̄/W, τ̄ + τ̄/W)   (width 2τ̄/W, so the window
//                                               begins at t − τ̄ on average)
// The best-quality (lowest point-error) packet in each of near and far is
// paired through eq. (17). The candidate is accepted only if its expected
// quality (E_i + E_j)/((Tf_i − Tf_j)·p̄) is below γ*; otherwise the previous
// value is retained. A sanity check refuses successive estimates differing
// by more than 3·10⁻⁷ in relative terms — the hardware cannot do that.
//
// Gaps: if the stream pauses for more than τ̄/2 the window no longer defines
// a *local* rate; it is cleared and the estimate is flagged stale until a
// full window of fresh data accumulates (§6.1 "Lost Packets").
#pragma once

#include <cstdint>

#include "common/ring_buffer.hpp"
#include "common/time_types.hpp"
#include "core/params.hpp"
#include "core/records.hpp"

namespace tscclock::core {

class LocalRateEstimator {
 public:
  explicit LocalRateEstimator(const Params& params);

  struct Result {
    bool evaluated = false;     ///< a candidate pair existed
    bool accepted = false;      ///< candidate passed the quality gate
    bool sanity_blocked = false;///< candidate rejected by the sanity check
    bool gap_reset = false;     ///< window cleared because of a data gap
  };

  /// Process a non-lost packet; `pbar` is the current global period.
  Result process(const PacketRecord& packet, Seconds point_error, double pbar);

  /// True once an estimate exists and the window is fresh (not stale).
  [[nodiscard]] bool usable() const { return has_estimate_ && !stale_; }
  [[nodiscard]] bool stale() const { return stale_; }

  /// Current quasi-local period estimate p̂_l.
  [[nodiscard]] double period() const;

  /// Residual rate error relative to the global estimate:
  /// γ̂_l = p̂_l/p̄ − 1 (the slope used by eq. (21)/(23)); 0 when unusable.
  [[nodiscard]] double residual_rate(double pbar) const;

  [[nodiscard]] std::uint64_t accepted_count() const { return accepted_; }
  [[nodiscard]] std::uint64_t sanity_count() const { return sanity_; }

 private:
  struct Entry {
    PacketRecord packet;
    Seconds error = 0;
  };

  Params params_;
  RingBuffer<Entry> window_;
  /// Parallel column of window_[k].error: the per-call sub-window min-scans
  /// touch only the error field, so scanning this packed column instead of
  /// the wide Entry structs keeps them in a couple of cache lines. Pushed,
  /// evicted, and cleared in lockstep with window_.
  RingBuffer<Seconds> errors_;
  double period_ = 0;
  bool has_estimate_ = false;
  bool stale_ = false;
  std::uint64_t accepted_ = 0;
  std::uint64_t sanity_ = 0;
  /// Total push_back count; window_[k]'s absolute stream position is
  /// total_pushed_ − window_.size() + k, stable across ring eviction and
  /// gap clears — the coordinate system of the boundary cursors below.
  std::uint64_t total_pushed_ = 0;
  /// Sub-window boundary cursors (absolute positions): each call's boundary
  /// sits near the previous call's, so a local bidirectional walk replaces
  /// the former per-call binary searches. Exact for any partitioned range,
  /// amortized O(1) as the stream advances.
  std::uint64_t near_begin_hint_ = 0;
  std::uint64_t far_begin_hint_ = 0;
  std::uint64_t far_end_hint_ = 0;
};

}  // namespace tscclock::core
