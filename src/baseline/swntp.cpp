#include "baseline/swntp.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"

namespace tscclock::baseline {

namespace {
constexpr double kMaxSlewRate = 500e-6;  // adjtime()-style slew limit
}

SwNtpClock::SwNtpClock(const PllConfig& config, double nominal_period)
    : config_(config),
      nominal_period_(nominal_period),
      pll_(config),
      timescale_(0, 0.0, nominal_period) {
  TSC_EXPECTS(nominal_period > 0.0);
}

Seconds SwNtpClock::time(TscCount count) const {
  Seconds reading = timescale_.read(count);
  if (slew_rate_ != 0.0) {
    const Seconds elapsed = timescale_.between(slew_start_, count);
    const Seconds active = std::clamp(elapsed, 0.0, slew_span_);
    reading += slew_rate_ * active;
  }
  return reading;
}

double SwNtpClock::effective_rate() const {
  double rate = timescale_.period() / nominal_period_;
  if (slew_rate_ != 0.0) {
    const Seconds elapsed = timescale_.between(slew_start_, last_count_);
    if (elapsed < slew_span_) rate += slew_rate_;
  }
  return rate;
}

void SwNtpClock::apply_slew_until(TscCount count) {
  // Fold the slew progress into the base timescale and re-anchor.
  const Seconds reading = time(count);
  const Seconds elapsed = timescale_.between(slew_start_, count);
  if (elapsed >= slew_span_) {
    slew_rate_ = 0.0;  // slew completed
  } else {
    slew_span_ -= std::max(elapsed, 0.0);  // remaining portion continues
  }
  timescale_ = CounterTimescale(count, reading, timescale_.period());
  slew_start_ = count;
}

void SwNtpClock::process_exchange(const core::RawExchange& exchange) {
  TSC_EXPECTS(counter_delta(exchange.tf, exchange.ta) > 0);
  ++samples_;
  last_count_ = exchange.tf;

  if (!initialized_) {
    // Initial set: client assumes symmetric delay around the server stamps.
    const Seconds rtt =
        delta_to_seconds(exchange.rtt_counts(), nominal_period_);
    const Seconds delay = rtt - exchange.server_delay();
    timescale_ = CounterTimescale(exchange.tf, exchange.te + delay / 2,
                                  nominal_period_);
    initialized_ = true;
    return;
  }

  // Client timestamps by its own (disciplined) clock.
  const Seconds t1 = time(exchange.ta);
  const Seconds t4 = time(exchange.tf);
  const Seconds offset =
      0.5 * ((exchange.tb - t1) + (exchange.te - t4));  // server − client
  const Seconds delay = (t4 - t1) - exchange.server_delay();
  last_offset_ = offset;

  const auto selected = filter_.add({offset, delay, t4});
  if (!selected) return;
  ++selections_;

  static constexpr Seconds kMinInterval = 1.0;
  const Seconds interval = std::max(kMinInterval, t4 - selected->epoch) +
                           config_.min_time_constant;
  const auto update = pll_.update(selected->offset, t4, interval);

  apply_slew_until(exchange.tf);
  switch (update.action) {
    case Pll::Action::kIgnored:
      break;
    case Pll::Action::kStepped:
      // The reset the paper criticizes: the absolute timescale jumps.
      timescale_.shift(update.step);
      slew_rate_ = 0.0;
      break;
    case Pll::Action::kSlewed: {
      timescale_.set_period_preserving_reading(
          exchange.tf, nominal_period_ * (1.0 + update.frequency));
      slew_span_ = std::max(config_.min_time_constant, interval);
      slew_rate_ =
          std::clamp(update.phase_correction / slew_span_, -kMaxSlewRate,
                     kMaxSlewRate);
      slew_start_ = exchange.tf;
      break;
    }
  }
}

SwNtpStatus SwNtpClock::status() const {
  SwNtpStatus s;
  s.samples = samples_;
  s.filter_selections = selections_;
  s.steps = pll_.steps();
  s.frequency_correction = pll_.frequency();
  s.last_offset_sample = last_offset_;
  return s;
}

}  // namespace tscclock::baseline
