#include "baseline/clock_filter.hpp"

namespace tscclock::baseline {

std::optional<FilterSample> ClockFilter::add(const FilterSample& sample) {
  register_.push_back(sample);
  std::size_t best = 0;
  for (std::size_t k = 1; k < register_.size(); ++k)
    if (register_[k].delay < register_[best].delay) best = k;
  const FilterSample& selected = register_[best];
  if (selected.epoch <= last_used_epoch_) return std::nullopt;
  last_used_epoch_ = selected.epoch;
  return selected;
}

Seconds ClockFilter::offset_spread() const {
  if (register_.empty()) return 0.0;
  Seconds lo = register_[0].offset;
  Seconds hi = register_[0].offset;
  for (std::size_t k = 1; k < register_.size(); ++k) {
    lo = std::min(lo, register_[k].offset);
    hi = std::max(hi, register_[k].offset);
  }
  return hi - lo;
}

}  // namespace tscclock::baseline
