#include "baseline/pll.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"

namespace tscclock::baseline {

Pll::Pll(const PllConfig& config) : config_(config) {
  TSC_EXPECTS(config.step_threshold > 0.0);
  TSC_EXPECTS(config.stepout > 0.0);
  TSC_EXPECTS(config.max_freq > 0.0);
}

Pll::Update Pll::update(Seconds offset, Seconds epoch, Seconds interval) {
  TSC_EXPECTS(interval > 0.0);
  Update u;

  if (std::fabs(offset) > config_.step_threshold) {
    // Spike/step logic: tolerate a transient, step if it persists.
    if (!spike_) {
      spike_ = true;
      spike_start_ = epoch;
      u.action = Action::kIgnored;
      u.frequency = freq_;
      return u;
    }
    if (epoch - spike_start_ < config_.stepout) {
      u.action = Action::kIgnored;
      u.frequency = freq_;
      return u;
    }
    spike_ = false;
    ++steps_;
    u.action = Action::kStepped;
    u.step = offset;
    u.frequency = freq_;
    return u;
  }
  spike_ = false;

  // PLL proper: phase gain spreads the offset over the time constant; the
  // frequency integral accumulates offset·interval / (4·tc²).
  const Seconds tc = std::max(config_.min_time_constant, interval);
  u.phase_correction = offset;  // amortized by the caller over ~tc
  freq_ += offset * interval / (4.0 * tc * tc);
  freq_ = std::clamp(freq_, -config_.max_freq, config_.max_freq);
  u.action = Action::kSlewed;
  u.frequency = freq_;
  return u;
}

}  // namespace tscclock::baseline
