// Simplified ntpd clock discipline (RFC 5905 §11.2 / the classic
// phase/frequency-locked loop). This is the *feedback* design the paper's
// feed-forward architecture replaces: offset samples drive both a phase
// slew and a frequency adjustment of the one-and-only system clock, and
// large persistent offsets cause a step (reset) — the behaviour the paper
// identifies as the SW-NTP clock's reliability problem.
#pragma once

#include "common/time_types.hpp"

namespace tscclock::baseline {

struct PllConfig {
  Seconds step_threshold = 0.128;  ///< STEPT: step if |offset| exceeds this
  Seconds stepout = 900.0;         ///< WATCH: spike tolerance before stepping
  double max_freq = 500e-6;        ///< NTP_MAXFREQ: |freq| clamp
  Seconds min_time_constant = 64;  ///< lower bound on the PLL time constant
};

class Pll {
 public:
  explicit Pll(const PllConfig& config);

  enum class Action {
    kIgnored,  ///< spike: sample discarded while inside the stepout window
    kSlewed,   ///< normal PLL phase/frequency update
    kStepped,  ///< clock stepped by the offset
  };

  struct Update {
    Action action = Action::kIgnored;
    Seconds phase_correction = 0;  ///< to amortize over the next interval
    double frequency = 0;          ///< total frequency correction after update
    Seconds step = 0;              ///< applied step (action == kStepped)
  };

  /// Feed a filtered offset sample taken at client time `epoch`,
  /// `interval` seconds after the previous sample.
  Update update(Seconds offset, Seconds epoch, Seconds interval);

  [[nodiscard]] double frequency() const { return freq_; }
  [[nodiscard]] std::uint64_t steps() const { return steps_; }

 private:
  PllConfig config_;
  double freq_ = 0;
  bool spike_ = false;
  Seconds spike_start_ = 0;
  std::uint64_t steps_ = 0;
};

}  // namespace tscclock::baseline
