// ntpd-style clock filter (RFC 5905 §10): an 8-stage shift register of
// (offset, delay) samples from which the sample with the *lowest delay* is
// selected — the classic NTP noise rejection that the paper's RTT-filtering
// generalizes. Part of the SW-NTP baseline used for comparison experiments.
#pragma once

#include <cstddef>
#include <optional>

#include "common/ring_buffer.hpp"
#include "common/time_types.hpp"

namespace tscclock::baseline {

struct FilterSample {
  Seconds offset = 0;
  Seconds delay = 0;
  Seconds epoch = 0;  ///< client time when the sample was made
};

class ClockFilter {
 public:
  static constexpr std::size_t kStages = 8;

  ClockFilter() : register_(kStages) {}

  /// Insert a new sample and return the minimum-delay sample of the
  /// register *if it is fresher than the last one handed out* (RFC 5905
  /// only uses a filtered sample once).
  std::optional<FilterSample> add(const FilterSample& sample);

  [[nodiscard]] std::size_t size() const { return register_.size(); }

  /// Dispersion-like spread of the register (max-min offset), a crude
  /// quality signal used by the discipline.
  [[nodiscard]] Seconds offset_spread() const;

 private:
  RingBuffer<FilterSample> register_;
  Seconds last_used_epoch_ = -1;
};

}  // namespace tscclock::baseline
