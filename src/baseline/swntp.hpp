// The SW-NTP baseline clock: a software clock ticking off the same raw
// counter, disciplined the ntpd way (clock filter + PLL + steps). This is
// the system the paper's introduction critiques — offset-centric, feedback
// driven, rate deliberately varied to chase offset, and subject to resets —
// implemented so the robustness and rate-stability comparisons can be run
// head-to-head against TscNtpClock on identical exchange streams.
#pragma once

#include <cstdint>

#include "baseline/clock_filter.hpp"
#include "baseline/pll.hpp"
#include "common/time_types.hpp"
#include "core/records.hpp"

namespace tscclock::baseline {

struct SwNtpStatus {
  std::uint64_t samples = 0;
  std::uint64_t filter_selections = 0;
  std::uint64_t steps = 0;
  double frequency_correction = 0;  ///< current PLL frequency term
  Seconds last_offset_sample = 0;
};

class SwNtpClock {
 public:
  /// `nominal_period` is the tick period [s/count] the kernel would assume.
  SwNtpClock(const PllConfig& config, double nominal_period);

  /// Process one completed exchange (same input as TscNtpClock).
  void process_exchange(const core::RawExchange& exchange);

  /// Current SW clock reading at a raw counter value, including the
  /// amortized phase slew.
  [[nodiscard]] Seconds time(TscCount count) const;

  /// Effective clock rate multiplier (1 + freq correction + active slew):
  /// the deliberately-varied rate the paper contrasts with the TSC clock.
  [[nodiscard]] double effective_rate() const;

  [[nodiscard]] SwNtpStatus status() const;

 private:
  void apply_slew_until(TscCount count);

  PllConfig config_;
  double nominal_period_;
  ClockFilter filter_;
  Pll pll_;

  bool initialized_ = false;
  CounterTimescale timescale_;

  // Active phase slew: `slew_rate_` applied from `slew_start_` for
  // `slew_span_` seconds of clock time.
  double slew_rate_ = 0;
  TscCount slew_start_ = 0;
  Seconds slew_span_ = 0;

  TscCount last_count_ = 0;
  std::uint64_t samples_ = 0;
  std::uint64_t selections_ = 0;
  Seconds last_offset_ = 0;
};

}  // namespace tscclock::baseline
