// Robustness comparison: TSC-NTP vs an ntpd-style SW-NTP clock on the same
// exchange stream through a rough day — congestion episodes, packet loss, a
// half-hour server fault and a route change. This is the paper's §1
// motivation made runnable: the SW-NTP clock steps (resets) and swings its
// rate by tens of PPM; the TSC-NTP clock never steps and its difference
// clock stays within the hardware bound.
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "baseline/swntp.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "harness/estimator.hpp"
#include "harness/session.hpp"
#include "harness/sinks.hpp"
#include "sim/scenario.hpp"

using namespace tscclock;

int main() {
  sim::ScenarioConfig scenario;
  scenario.server = sim::ServerKind::kInt;
  scenario.duration = duration::kDay;
  scenario.seed = 1968;
  // A rough day. The 20-minute fault exceeds the SW-NTP stepout (15 min),
  // so the baseline steps; the TSC-NTP sanity check rides it out.
  scenario.events.add_server_fault(
      10 * duration::kHour, 10 * duration::kHour + 20 * duration::kMinute,
      0.150);
  scenario.events.add_level_shift(
      {16 * duration::kHour, sim::kForever, 0.6e-3, 0.0});
  auto path = sim::ScenarioConfig::path_preset(scenario.server);
  path.loss_prob = 0.01;
  path.forward.spike_prob = 0.10;
  scenario.path_override = path;
  sim::Testbed testbed(scenario);

  // Both clocks run as estimator lanes of one MultiEstimatorSession — the
  // same drive layer every other comparison in this repo uses — so they see
  // the identical exchange sequence, each scored by its own lane.
  harness::SessionConfig config;
  config.params.poll_period = scenario.poll_period;
  config.discard_warmup = duration::kHour;
  config.warmup_policy = harness::WarmupPolicy::kGroundTruth;

  harness::MultiEstimatorSession session;
  const std::size_t tsc_lane = session.add_lane(
      config, std::make_unique<harness::TscNtpEstimator>(
                  config.params, testbed.nominal_period()));
  // The SW lane also emits warm-up records: its rate swing is tracked from
  // the first packet, like the original hand-rolled duel did.
  harness::SessionConfig sw_config = config;
  sw_config.emit_unevaluated = true;
  auto sw_estimator = std::make_unique<harness::SwNtpEstimator>(
      baseline::PllConfig{}, testbed.nominal_period());
  const baseline::SwNtpClock& sw = sw_estimator->sw_clock();
  const std::size_t sw_lane =
      session.add_lane(sw_config, std::move(sw_estimator));

  std::vector<double> tsc_abs;
  std::vector<double> sw_abs;
  double sw_rate_lo = 10;
  double sw_rate_hi = 0;
  std::printf("%8s %14s %14s %10s\n", "hour", "TSC-NTP err", "SW-NTP err",
              "SW steps");
  int next_report = 2;
  // Lanes process each exchange in order, so by the time the SW lane's sink
  // fires the TSC lane has already scored the same packet — the progress
  // printout can show both.
  double last_tsc_error = 0;
  harness::CallbackSink tsc_sink([&](const harness::SampleRecord& rec) {
    last_tsc_error = rec.abs_clock_error;
    tsc_abs.push_back(std::fabs(rec.abs_clock_error));
  });
  harness::CallbackSink sw_sink([&](const harness::SampleRecord& rec) {
    if (rec.lost) return;
    sw_rate_lo = std::min(sw_rate_lo, sw.effective_rate());
    sw_rate_hi = std::max(sw_rate_hi, sw.effective_rate());
    if (!rec.evaluated) return;
    const double e_sw = rec.abs_clock_error;
    sw_abs.push_back(std::fabs(e_sw));
    const double hour = rec.truth_tb / duration::kHour;
    if (hour >= next_report) {
      std::printf("%8.1f %12.1fus %12.1fus %10s\n", hour,
                  last_tsc_error * 1e6, e_sw * 1e6,
                  format_count(sw.status().steps).c_str());
      next_report += 2;
    }
  });
  session.add_sink(tsc_lane, tsc_sink);
  session.add_sink(sw_lane, sw_sink);
  session.run(testbed);
  const auto& tsc = session.lane(tsc_lane).clock();

  const auto st = percentile_summary(tsc_abs);
  const auto ss = percentile_summary(sw_abs);
  std::printf("\nsummary of |error| vs GPS reference (the 20-minute fault\n"
              "dominates both tails: SW-NTP follows the full 150 ms and\n"
              "steps; TSC-NTP's transient stays ~10x smaller, with no\n"
              "reset and full recovery):\n");
  std::printf("  TSC-NTP: median %6.1f us, p99 %8.1f us, sanity holds, "
              "0 steps\n",
              st.p50 * 1e6, st.p99 * 1e6);
  std::printf("  SW-NTP : median %6.1f us, p99 %8.1f us, %s step(s), "
              "rate swung %.1f PPM\n",
              ss.p50 * 1e6, ss.p99 * 1e6,
              format_count(sw.status().steps).c_str(),
              (sw_rate_hi - sw_rate_lo) * 1e6);
  const auto status = tsc.status();
  std::printf("  TSC-NTP events: %s offset sanity, %s rate sanity, "
              "%s upshift(s) detected\n",
              format_count(status.offset_sanity_triggers).c_str(),
              format_count(status.rate_sanity_blocks).c_str(),
              format_count(status.upshifts).c_str());
  return 0;
}
