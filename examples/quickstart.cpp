// Quickstart: synchronize a TSC-NTP clock against a nearby stratum-1 server
// for six hours of simulated time, then read both clocks.
//
//   1. Build a testbed (oscillator + path + server + DAG reference).
//   2. Feed each completed NTP exchange into TscNtpClock::process_exchange.
//   3. Read the difference clock (time intervals) and absolute clock
//      (absolute time), and inspect the synchronization status.
#include <cstdio>

#include "core/clock.hpp"
#include "sim/scenario.hpp"

using namespace tscclock;

int main() {
  // -- 1. A machine-room host polling ServerInt every 16 s for 6 hours. ----
  sim::ScenarioConfig scenario;
  scenario.server = sim::ServerKind::kInt;
  scenario.environment = sim::Environment::kMachineRoom;
  scenario.poll_period = 16.0;
  scenario.duration = 6 * duration::kHour;
  scenario.seed = 7;
  sim::Testbed testbed(scenario);

  // -- 2. The clock: paper-default parameters, nominal period as the guess.
  core::Params params;
  params.poll_period = scenario.poll_period;
  core::TscNtpClock clock(params, testbed.nominal_period());

  std::size_t fed = 0;
  double worst_error_us = 0;
  TscCount last_tf = 0;
  Seconds last_tg = 0;
  while (auto exchange = testbed.next()) {
    if (exchange->lost) continue;  // the algorithm never sees lost packets
    core::RawExchange raw{exchange->ta_counts, exchange->tb_stamp,
                          exchange->te_stamp, exchange->tf_counts};
    clock.process_exchange(raw);
    ++fed;
    if (exchange->ref_available && clock.status().warmed_up) {
      const Seconds err =
          clock.absolute_time(exchange->tf_counts) - exchange->tg;
      worst_error_us = std::max(worst_error_us, std::abs(err) * 1e6);
      last_tf = exchange->tf_counts;
      last_tg = exchange->tg;
    }
  }

  // -- 3. Read the clocks. -------------------------------------------------
  const auto status = clock.status();
  std::printf("fed %zu NTP exchanges (poll %.0fs, %s, %s)\n", fed,
              scenario.poll_period, to_string(scenario.server).c_str(),
              to_string(scenario.environment).c_str());
  std::printf("estimated period   : %.9e s/cycle (true %.9e)\n",
              clock.period(), testbed.true_period());
  std::printf("rate error         : %.4f PPM (quality bound %.4f PPM)\n",
              (clock.period() / testbed.true_period() - 1.0) * 1e6,
              status.period_quality * 1e6);
  std::printf("offset estimate    : %+.1f us\n", status.offset * 1e6);
  std::printf("min RTT            : %.3f ms\n", status.min_rtt * 1e3);

  // Difference clock: a 1-second interval measured in counter units.
  const TscCount one_second_later =
      last_tf + static_cast<TscCount>(1.0 / clock.period());
  std::printf("difference clock   : 1s interval reads %.9f s\n",
              clock.difference(last_tf, one_second_later));

  // Absolute clock vs the GPS-DAG reference at the last packet.
  std::printf("absolute clock err : %+.1f us vs GPS reference "
              "(worst post-warmup %.1f us)\n",
              (clock.absolute_time(last_tf) - last_tg) * 1e6, worst_error_us);
  std::printf("sanity triggers=%llu fallbacks=%llu upshifts=%llu\n",
              static_cast<unsigned long long>(status.offset_sanity_triggers),
              static_cast<unsigned long long>(status.offset_fallbacks),
              static_cast<unsigned long long>(status.upshifts));
  return 0;
}
