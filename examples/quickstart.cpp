// Quickstart: synchronize a TSC-NTP clock against a nearby stratum-1 server
// for six hours of simulated time, then read both clocks.
//
//   1. Build a testbed (oscillator + path + server + DAG reference).
//   2. Drive it through harness::ClockSession — the canonical exchange
//      pipeline shared by the benches, the examples and the sweep — with a
//      callback sink observing each scored packet.
//   3. Read the difference clock (time intervals) and absolute clock
//      (absolute time), and inspect the synchronization status.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/table.hpp"
#include "harness/session.hpp"
#include "harness/sinks.hpp"
#include "sim/scenario.hpp"

using namespace tscclock;

int main() {
  // -- 1. A machine-room host polling ServerInt every 16 s for 6 hours. ----
  sim::ScenarioConfig scenario;
  scenario.server = sim::ServerKind::kInt;
  scenario.environment = sim::Environment::kMachineRoom;
  scenario.poll_period = 16.0;
  scenario.duration = 6 * duration::kHour;
  scenario.seed = 7;
  sim::Testbed testbed(scenario);

  // -- 2. The session: paper-default parameters, nominal period as the
  //       initial guess, every scored packet delivered to the sink.
  harness::SessionConfig config;
  config.params.poll_period = scenario.poll_period;
  harness::ClockSession session(config, testbed.nominal_period());

  double worst_error_us = 0;
  TscCount last_tf = 0;
  Seconds last_tg = 0;
  harness::CallbackSink observer([&](const harness::SampleRecord& rec) {
    if (!rec.warmed_up) return;
    worst_error_us =
        std::max(worst_error_us, std::abs(rec.abs_clock_error) * 1e6);
    last_tf = rec.raw.tf;
    last_tg = rec.tg;
  });
  session.add_sink(observer);
  const auto& summary = session.run(testbed);
  const auto& status = summary.final_status;
  auto& clock = session.clock();

  // -- 3. Read the clocks. -------------------------------------------------
  std::printf("fed %zu NTP exchanges (poll %.0fs, %s, %s; %zu lost)\n",
              summary.exchanges - summary.lost, scenario.poll_period,
              to_string(scenario.server).c_str(),
              to_string(scenario.environment).c_str(), summary.lost);
  std::printf("estimated period   : %.9e s/cycle (true %.9e)\n",
              clock.period(), testbed.true_period());
  std::printf("rate error         : %.4f PPM (quality bound %.4f PPM)\n",
              (clock.period() / testbed.true_period() - 1.0) * 1e6,
              status.period_quality * 1e6);
  std::printf("offset estimate    : %+.1f us\n", status.offset * 1e6);
  std::printf("min RTT            : %.3f ms\n", status.min_rtt * 1e3);

  // Difference clock: a 1-second interval measured in counter units.
  const TscCount one_second_later =
      last_tf + static_cast<TscCount>(1.0 / clock.period());
  std::printf("difference clock   : 1s interval reads %.9f s\n",
              clock.difference(last_tf, one_second_later));

  // Absolute clock vs the GPS-DAG reference at the last packet.
  std::printf("absolute clock err : %+.1f us vs GPS reference "
              "(worst post-warmup %.1f us)\n",
              (clock.absolute_time(last_tf) - last_tg) * 1e6, worst_error_us);
  std::printf("sanity triggers=%s fallbacks=%s upshifts=%s\n",
              format_count(status.offset_sanity_triggers).c_str(),
              format_count(status.offset_fallbacks).c_str(),
              format_count(status.upshifts).c_str());
  return 0;
}
