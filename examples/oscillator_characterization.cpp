// Oscillator characterization — the paper's prerequisite step (§3.1): before
// deploying the clock on a new class of hardware, measure the two metrics
// the algorithms depend on from an offset trace:
//   * the SKM scale τ* (where the Allan deviation stops falling as 1/τ);
//   * the large-scale rate-error bound (must be ≲ 0.1 PPM).
// This example runs the analysis end-to-end on a simulated trace; with real
// hardware the same code consumes (counter, reference-time) pairs.
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/allan.hpp"
#include "harness/session.hpp"
#include "harness/sinks.hpp"
#include "sim/scenario.hpp"

using namespace tscclock;

int main() {
  // Collect a 4-day trace against the nearby server.
  sim::ScenarioConfig scenario;
  scenario.duration = 4 * duration::kDay;
  scenario.poll_period = 16.0;
  scenario.seed = 2026;
  sim::Testbed testbed(scenario);

  // The characterization consumes (corrected counter, reference time) pairs;
  // the stream is driven through the shared harness like every consumer.
  std::vector<double> times;
  std::vector<double> theta;
  const double period = testbed.true_period();
  bool first = true;
  TscCount tf0 = 0;
  double tg0 = 0;
  harness::SessionConfig config;
  config.params.poll_period = scenario.poll_period;
  harness::ClockSession session(config, testbed.nominal_period());
  harness::CallbackSink collect([&](const harness::SampleRecord& rec) {
    if (first) {
      tf0 = rec.tf_counts_corrected;
      tg0 = rec.tg;
      first = false;
    }
    const double elapsed =
        delta_to_seconds(counter_delta(rec.tf_counts_corrected, tf0), period);
    times.push_back(rec.tg - tg0);
    theta.push_back(elapsed - (rec.tg - tg0));
  });
  session.add_sink(collect);
  session.run(testbed);

  const auto phase = resample_linear(times, theta, scenario.poll_period);
  const auto factors = log_spaced_factors(phase.size(), 4);
  const auto adev = allan_deviation(phase, scenario.poll_period, factors);

  std::printf("%10s %14s\n", "tau [s]", "ADEV [PPM]");
  for (const auto& p : adev)
    std::printf("%10.0f %14.4f\n", p.tau, to_ppm(p.deviation));

  // τ*: the paper defines it through the Allan minimum — "the greatest
  // precision is obtained at the minimum point" and the SKM holds up to
  // that scale. Below τ* the curve falls (white timestamping noise at
  // 1/τ); above it oscillator wander takes over.
  // τ* is the *first* Allan minimum: where the 1/τ (white timestamping
  // noise) regime hands over to oscillator wander. Periodic wander creates
  // spurious deep nulls at large τ (the Allan response of a sinusoid
  // vanishes at its own period), so the search stops once the curve has
  // clearly turned upward.
  constexpr std::size_t kMinTerms = 50;
  double tau_star = adev.front().tau;
  double min_adev = adev.front().deviation;
  for (const auto& p : adev) {
    if (p.terms < kMinTerms) continue;
    if (p.deviation < min_adev) {
      min_adev = p.deviation;
      tau_star = p.tau;
    }
    if (p.deviation > 2.0 * min_adev) break;  // clearly past the minimum
  }
  // Rate-error bound: the worst Allan deviation *beyond* τ* — small-τ
  // values measure timestamping noise, not oscillator stability.
  double bound = 0;
  for (const auto& p : adev)
    if (p.tau >= tau_star && p.terms >= kMinTerms)
      bound = std::max(bound, p.deviation);

  std::printf("\nmeasured hardware abstraction:\n");
  std::printf("  SKM scale tau*          : ~%.0f s (paper: ~1000 s)\n",
              tau_star);
  std::printf("  rate-error bound        : %.3f PPM (must be <~ 0.1 PPM)\n",
              to_ppm(bound));
  std::printf("  best rate precision     : %.4f PPM at the Allan minimum\n",
              to_ppm(min_adev));
  std::printf("\nThese two numbers parameterize core::Params (skm_scale,\n"
              "rate_error_bound); any oscillator with a characterized pair\n"
              "works, with performance scaled accordingly (§3.1).\n");
  return 0;
}
