// One-way delay measurement — the motivating application of the paper's
// *absolute* clock (§1, §2.2): measuring d→ between two hosts requires
// absolute time at both ends, and the error budget is dominated by clock
// offset, not by rate.
//
// Setup: two hosts, each with its own oscillator and its own TSC-NTP clock
// synchronized through its own NTP exchanges. Probe packets go from host A
// to host B over a separate path; the measured one-way delay is
//
//     d̂ = Ca_B(arrival counts at B) − Ca_A(departure counts at A)
//
// and is compared against the true simulated delay. With both clocks
// synchronized to ~30 µs, one-way delays of hundreds of µs are measured to
// within tens of µs — impossible with the SW-NTP clock's ms-scale errors.
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/stats.hpp"
#include "harness/session.hpp"
#include "harness/sinks.hpp"
#include "sim/scenario.hpp"

using namespace tscclock;

namespace {

/// A host: testbed (own oscillator + NTP path to its server) + a harness
/// session driving its own TSC-NTP clock one exchange at a time.
struct Host {
  Host(std::uint64_t seed, Seconds duration)
      : scenario(make_scenario(seed, duration)),
        testbed(scenario),
        session(make_config(scenario), testbed.nominal_period()),
        poll_times([this](const harness::SampleRecord& rec) {
          last_poll_time = rec.truth_ta;
        }) {
    session.add_sink(poll_times);
  }

  // The session holds a pointer to poll_times and the sink's lambda captures
  // `this`; a copy or move would leave them dangling.
  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  static sim::ScenarioConfig make_scenario(std::uint64_t seed,
                                           Seconds duration) {
    sim::ScenarioConfig s;
    s.server = sim::ServerKind::kInt;
    s.duration = duration;
    s.seed = seed;
    return s;
  }
  static harness::SessionConfig make_config(const sim::ScenarioConfig& s) {
    harness::SessionConfig c;
    c.params.poll_period = s.poll_period;
    c.emit_unevaluated = true;  // poll instants matter even for lost replies
    return c;
  }

  /// Generate and process the next NTP exchange through the shared harness
  /// sequence. The oscillator is read in strictly increasing order, so
  /// probes must be interleaved *between* exchange windows (see main loop).
  bool step() { return session.step(testbed); }

  /// Raw counter value at true time t (what a driver timestamp would read).
  TscCount stamp(Seconds t) { return testbed.oscillator().read(t); }

  [[nodiscard]] const core::TscNtpClock& clock() const {
    return session.clock();
  }

  Seconds last_poll_time = 0;

  sim::ScenarioConfig scenario;
  sim::Testbed testbed;
  harness::ClockSession session;
  harness::CallbackSink poll_times;
};

}  // namespace

int main() {
  const Seconds duration = 8 * duration::kHour;
  Host sender(101, duration);
  Host receiver(202, duration);

  // The probe path between the two hosts (independent of the NTP paths).
  sim::OneWayDelayConfig probe_config;
  probe_config.min_delay = 650e-6;
  probe_config.jitter_mean = 80e-6;
  probe_config.spike_prob = 0.05;
  sim::OneWayDelayModel probe_path(probe_config, Rng(303));

  // Warm both clocks up for two hours, then probe once per poll cycle,
  // midway between NTP exchanges (each host's counter is read in strictly
  // increasing order: NTP exchange i, then the probe, then exchange i+1).
  std::vector<double> measurement_errors;
  std::vector<double> true_delays;
  while (sender.step() && receiver.step()) {
    const Seconds t = std::max(sender.last_poll_time,
                               receiver.last_poll_time) + 8.0;
    if (t < 2 * duration::kHour) continue;  // warm-up

    const Seconds true_delay = probe_path.delay(t);
    const TscCount departure = sender.stamp(t);
    const TscCount arrival = receiver.stamp(t + true_delay);

    const Seconds measured = receiver.clock().absolute_time(arrival) -
                             sender.clock().absolute_time(departure);
    measurement_errors.push_back(measured - true_delay);
    true_delays.push_back(true_delay);
  }

  const auto err = summarize(measurement_errors);
  const auto dly = summarize(true_delays);
  std::printf("one-way delay measurement over %zu probes\n",
              measurement_errors.size());
  std::printf("  true delay     : min %.1f us, median %.1f us\n",
              dly.min * 1e6, dly.percentiles.p50 * 1e6);
  std::printf("  measured error : median %+.1f us, IQR %.1f us, "
              "p1..p99 [%+.1f, %+.1f] us\n",
              err.percentiles.p50 * 1e6, err.percentiles.iqr() * 1e6,
              err.percentiles.p01 * 1e6, err.percentiles.p99 * 1e6);
  std::printf("\nThe error is the *difference of two clock offsets*: each\n"
              "host contributes ~(its path asymmetry)/2 plus filtered noise.\n"
              "With the SW-NTP clock, ms-scale errors would exceed the\n"
              "one-way delay being measured (%.0f us) entirely.\n",
              dly.min * 1e6);
  return 0;
}
